//! The structured event journal for discrete memory-controller events.
//!
//! Memory controllers announce promotions, demotions, expansions, compactor
//! passes, and displacements through [`ProbeHandle`]s
//! (see `dylect_sim_core::probe`). One [`EventJournal`] collects the events
//! of every MC, tagged with the emitting controller's index. The journal is
//! bounded: once `capacity` entries are stored, further events are counted
//! (per-kind totals stay exact) but not retained.

use std::cell::RefCell;
use std::rc::Rc;

use dylect_sim_core::probe::{AccessRecord, EventSink, McEvent, ProbeHandle, SpanRecord};
use dylect_sim_core::Time;

use crate::attribution::Attribution;

/// One journaled event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// Simulated time of the event.
    pub now: Time,
    /// Index of the emitting memory controller.
    pub mc: u32,
    /// What happened.
    pub event: McEvent,
    /// The OS page concerned.
    pub page: u64,
}

/// A bounded, shared journal of discrete MC events.
#[derive(Clone, Debug, Default)]
pub struct EventJournal {
    entries: Vec<JournalEntry>,
    capacity: usize,
    dropped: u64,
    counts: [u64; McEvent::ALL.len()],
}

impl EventJournal {
    /// Creates a journal retaining at most `capacity` entries.
    pub fn new(capacity: usize) -> EventJournal {
        EventJournal {
            entries: Vec::new(),
            capacity,
            dropped: 0,
            counts: [0; McEvent::ALL.len()],
        }
    }

    fn event_index(event: McEvent) -> usize {
        McEvent::ALL
            .iter()
            .position(|&e| e == event)
            .expect("in ALL")
    }

    /// Records one event (called by [`McProbe`]).
    pub fn record(&mut self, now: Time, mc: u32, event: McEvent, page: u64) {
        self.counts[Self::event_index(event)] += 1;
        if self.entries.len() < self.capacity {
            self.entries.push(JournalEntry {
                now,
                mc,
                event,
                page,
            });
        } else {
            self.dropped += 1;
        }
    }

    /// The retained entries, in emission order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Events seen but not retained (capacity overflow).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exact total count of `event`, including dropped entries.
    pub fn count(&self, event: McEvent) -> u64 {
        self.counts[Self::event_index(event)]
    }

    /// Total events seen (retained + dropped).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// [`EventSink`] adapter tagging events with one MC's index before they
/// reach the shared journal; access and span records pass through to the
/// shared [`Attribution`] aggregator untagged (records carry their own
/// identity).
#[derive(Clone, Debug)]
pub struct McProbe {
    journal: Rc<RefCell<EventJournal>>,
    attribution: Rc<RefCell<Attribution>>,
    mc: u32,
}

impl McProbe {
    /// Builds a [`ProbeHandle`] feeding `journal` and `attribution`, tagged
    /// as controller `mc`.
    pub fn handle(
        journal: Rc<RefCell<EventJournal>>,
        attribution: Rc<RefCell<Attribution>>,
        mc: u32,
    ) -> ProbeHandle {
        ProbeHandle::new(Rc::new(RefCell::new(McProbe {
            journal,
            attribution,
            mc,
        })))
    }
}

impl EventSink for McProbe {
    fn record(&mut self, now: Time, event: McEvent, page: u64) {
        self.journal.borrow_mut().record(now, self.mc, event, page);
    }

    fn record_access(&mut self, rec: &AccessRecord) {
        self.attribution.borrow_mut().record(rec);
    }

    fn record_span(&mut self, span: &SpanRecord) {
        self.attribution.borrow_mut().record_span(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut j = EventJournal::new(8);
        j.record(Time::from_ns(1.0), 0, McEvent::Promotion, 42);
        j.record(Time::from_ns(2.0), 1, McEvent::Promotion, 43);
        j.record(Time::from_ns(3.0), 0, McEvent::Expansion, 7);
        assert_eq!(j.entries().len(), 3);
        assert_eq!(j.count(McEvent::Promotion), 2);
        assert_eq!(j.count(McEvent::Expansion), 1);
        assert_eq!(j.count(McEvent::Demotion), 0);
        assert_eq!(j.total(), 3);
        assert_eq!(j.entries()[1].mc, 1);
    }

    #[test]
    fn capacity_bounds_retention_but_not_counts() {
        let mut j = EventJournal::new(2);
        for i in 0..5 {
            j.record(Time::ZERO, 0, McEvent::Compaction, i);
        }
        assert_eq!(j.entries().len(), 2);
        assert_eq!(j.dropped(), 3);
        assert_eq!(j.count(McEvent::Compaction), 5);
    }

    #[test]
    fn probes_tag_their_mc() {
        let journal = Rc::new(RefCell::new(EventJournal::new(16)));
        let attribution = Rc::new(RefCell::new(Attribution::new(16)));
        let p0 = McProbe::handle(journal.clone(), attribution.clone(), 0);
        let p3 = McProbe::handle(journal.clone(), attribution.clone(), 3);
        p0.emit(Time::ZERO, McEvent::Demotion, 1);
        p3.emit(Time::ZERO, McEvent::Demotion, 2);
        let j = journal.borrow();
        assert_eq!(j.entries()[0].mc, 0);
        assert_eq!(j.entries()[1].mc, 3);
    }
}
