//! The structured event journal for discrete memory-controller events.
//!
//! Memory controllers announce promotions, demotions, expansions, compactor
//! passes, and displacements through [`ProbeHandle`]s
//! (see `dylect_sim_core::probe`). One [`EventJournal`] collects the events
//! of every MC, tagged with the emitting controller's index. The journal is
//! bounded: once `capacity` entries are stored, further events are counted
//! (per-kind totals stay exact) but not retained.

use std::cell::RefCell;
use std::rc::Rc;

use dylect_sim_core::probe::{
    AccessRecord, CteRecord, EventSink, McEvent, ProbeHandle, SpanRecord,
};
use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use dylect_sim_core::Time;

use crate::attribution::Attribution;
use crate::provenance::Provenance;
use crate::shadow::ShadowState;

/// One journaled event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// Simulated time of the event.
    pub now: Time,
    /// Index of the emitting memory controller.
    pub mc: u32,
    /// What happened.
    pub event: McEvent,
    /// The OS page concerned.
    pub page: u64,
}

/// A bounded, shared journal of discrete MC events.
#[derive(Clone, Debug, Default)]
pub struct EventJournal {
    entries: Vec<JournalEntry>,
    capacity: usize,
    dropped: u64,
    counts: [u64; McEvent::ALL.len()],
}

impl EventJournal {
    /// Creates a journal retaining at most `capacity` entries.
    pub fn new(capacity: usize) -> EventJournal {
        EventJournal {
            entries: Vec::new(),
            capacity,
            dropped: 0,
            counts: [0; McEvent::ALL.len()],
        }
    }

    fn event_index(event: McEvent) -> usize {
        McEvent::ALL
            .iter()
            .position(|&e| e == event)
            .expect("in ALL")
    }

    /// Records one event (called by [`McProbe`]).
    pub fn record(&mut self, now: Time, mc: u32, event: McEvent, page: u64) {
        self.counts[Self::event_index(event)] += 1;
        if self.entries.len() < self.capacity {
            self.entries.push(JournalEntry {
                now,
                mc,
                event,
                page,
            });
        } else {
            self.dropped += 1;
        }
    }

    /// The retained entries, in emission order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Events seen but not retained (capacity overflow).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exact total count of `event`, including dropped entries.
    pub fn count(&self, event: McEvent) -> u64 {
        self.counts[Self::event_index(event)]
    }

    /// Total events seen (retained + dropped).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Events are stored as their index in [`McEvent::ALL`]; the capacity is
/// construction state, so a snapshot with more retained entries than the
/// restoring journal can hold is rejected rather than truncated.
impl Snapshot for EventJournal {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.dropped);
        for &c in &self.counts {
            w.u64(c);
        }
        w.seq(self.entries.len());
        for e in &self.entries {
            e.now.write_snapshot(w);
            w.u32(e.mc);
            w.u8(Self::event_index(e.event) as u8);
            w.u64(e.page);
        }
    }
}

impl Restore for EventJournal {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.dropped = r.u64()?;
        for c in &mut self.counts {
            *c = r.u64()?;
        }
        let n = r.seq(21)?;
        if n > self.capacity {
            return Err(SnapError::Corrupt("journal entries exceed capacity"));
        }
        self.entries.clear();
        for _ in 0..n {
            let mut now = Time::ZERO;
            now.restore_snapshot(r)?;
            let mc = r.u32()?;
            let event = *McEvent::ALL
                .get(r.u8()? as usize)
                .ok_or(SnapError::Corrupt("unknown journal event tag"))?;
            let page = r.u64()?;
            self.entries.push(JournalEntry {
                now,
                mc,
                event,
                page,
            });
        }
        Ok(())
    }
}

/// [`EventSink`] adapter tagging events with one MC's index before they
/// reach the shared journal; access and span records pass through to the
/// shared [`Attribution`] aggregator untagged (records carry their own
/// identity).
#[derive(Clone, Debug)]
pub struct McProbe {
    journal: Rc<RefCell<EventJournal>>,
    attribution: Rc<RefCell<Attribution>>,
    /// Shadow CTE tag arrays; `None` when shadow probing is disabled so
    /// the hot CTE-record path costs nothing beyond the `Option` check.
    shadow: Option<Rc<RefCell<ShadowState>>>,
    /// Page-lifetime tracker riding the event stream; gated like `shadow`.
    provenance: Option<Rc<RefCell<Provenance>>>,
    mc: u32,
}

impl McProbe {
    /// Builds a [`ProbeHandle`] feeding `journal` and `attribution`, tagged
    /// as controller `mc`. When `shadow`/`provenance` are given, CTE
    /// records replay against the shadow tag arrays and MC events also
    /// drive the per-page lifetime state machines.
    pub fn handle(
        journal: Rc<RefCell<EventJournal>>,
        attribution: Rc<RefCell<Attribution>>,
        shadow: Option<Rc<RefCell<ShadowState>>>,
        provenance: Option<Rc<RefCell<Provenance>>>,
        mc: u32,
    ) -> ProbeHandle {
        ProbeHandle::new(Rc::new(RefCell::new(McProbe {
            journal,
            attribution,
            shadow,
            provenance,
            mc,
        })))
    }
}

impl EventSink for McProbe {
    fn record(&mut self, now: Time, event: McEvent, page: u64) {
        self.journal.borrow_mut().record(now, self.mc, event, page);
        if let Some(prov) = &self.provenance {
            prov.borrow_mut().record(self.mc, event, page);
        }
    }

    fn record_access(&mut self, rec: &AccessRecord) {
        self.attribution.borrow_mut().record(rec);
    }

    fn record_span(&mut self, span: &SpanRecord) {
        self.attribution.borrow_mut().record_span(span);
    }

    fn record_cte(&mut self, rec: &CteRecord) {
        if let Some(shadow) = &self.shadow {
            shadow.borrow_mut().record(self.mc, rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut j = EventJournal::new(8);
        j.record(Time::from_ns(1.0), 0, McEvent::Promotion, 42);
        j.record(Time::from_ns(2.0), 1, McEvent::Promotion, 43);
        j.record(Time::from_ns(3.0), 0, McEvent::Expansion, 7);
        assert_eq!(j.entries().len(), 3);
        assert_eq!(j.count(McEvent::Promotion), 2);
        assert_eq!(j.count(McEvent::Expansion), 1);
        assert_eq!(j.count(McEvent::Demotion), 0);
        assert_eq!(j.total(), 3);
        assert_eq!(j.entries()[1].mc, 1);
    }

    #[test]
    fn capacity_bounds_retention_but_not_counts() {
        let mut j = EventJournal::new(2);
        for i in 0..5 {
            j.record(Time::ZERO, 0, McEvent::Compaction, i);
        }
        assert_eq!(j.entries().len(), 2);
        assert_eq!(j.dropped(), 3);
        assert_eq!(j.count(McEvent::Compaction), 5);
    }

    #[test]
    fn probes_tag_their_mc() {
        let journal = Rc::new(RefCell::new(EventJournal::new(16)));
        let attribution = Rc::new(RefCell::new(Attribution::new(16)));
        let p0 = McProbe::handle(journal.clone(), attribution.clone(), None, None, 0);
        let p3 = McProbe::handle(journal.clone(), attribution.clone(), None, None, 3);
        p0.emit(Time::ZERO, McEvent::Demotion, 1);
        p3.emit(Time::ZERO, McEvent::Demotion, 2);
        let j = journal.borrow();
        assert_eq!(j.entries()[0].mc, 0);
        assert_eq!(j.entries()[1].mc, 3);
    }

    #[test]
    fn probes_forward_to_shadow_and_provenance_when_wired() {
        use dylect_memctl::controller::CteCacheGeometry;
        use dylect_sim_core::probe::{CteBlockKind, CteOp};
        use std::cell::Cell;

        let journal = Rc::new(RefCell::new(EventJournal::new(16)));
        let attribution = Rc::new(RefCell::new(Attribution::new(16)));
        let shadow = Rc::new(RefCell::new(ShadowState::default()));
        shadow.borrow_mut().configure_mc(
            0,
            Some(CteCacheGeometry {
                capacity_bytes: 4096,
                ways: 2,
                block_bytes: 64,
                group_size: 3,
                num_groups: 8,
            }),
        );
        let clock = Rc::new(Cell::new(0u64));
        let prov = Rc::new(RefCell::new(Provenance::new(clock, 4, 1000)));
        let p = McProbe::handle(
            journal.clone(),
            attribution,
            Some(shadow.clone()),
            Some(prov.clone()),
            0,
        );
        p.emit_cte(&CteRecord {
            kind: CteBlockKind::Unified,
            op: CteOp::Lookup {
                hit: false,
                fill_on_miss: true,
            },
            key: 1,
        });
        p.emit(Time::ZERO, McEvent::Promotion, 4);
        assert_eq!(shadow.borrow().classes_total().real_misses, 1);
        assert_eq!(prov.borrow().pages_tracked(), 1);
        assert_eq!(journal.borrow().total(), 1, "journal still fed");
    }
}
