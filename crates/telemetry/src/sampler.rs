//! The epoch sampler: cumulative counter snapshots → derived time series.
//!
//! Once per epoch (a fixed number of simulated memory operations) the run
//! loop hands the sampler a [`SampleSnapshot`] of the cumulative simulator
//! counters. The sampler differences consecutive snapshots to get
//! epoch-local activity (so a rate series shows *current* behavior, not the
//! run-average) and pushes one point per derived series, keyed by
//! instructions retired.
//!
//! Counter resets are tolerated: `System::start_measurement` zeroes all
//! statistics at the warmup/measurement boundary, which the sampler detects
//! as a cumulative value going backwards and treats the post-reset value as
//! the whole delta.

use dylect_dram::{DramStats, QueueStats};
use dylect_memctl::controller::{McStats, Occupancy};
use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

use crate::series::TimeSeries;

/// A point-in-time snapshot of the simulator's cumulative statistics.
#[derive(Clone, Debug, Default)]
pub struct SampleSnapshot {
    /// Instructions retired across all cores (the series x-axis).
    pub instructions: u64,
    /// Aggregated memory-controller statistics (cumulative).
    pub mc: McStats,
    /// Aggregated DRAM statistics (cumulative).
    pub dram: DramStats,
    /// Current page-level census (a gauge, not cumulative).
    pub occupancy: Occupancy,
    /// Aggregated DRAM queue statistics (cumulative).
    pub queue: QueueStats,
}

/// Difference of cumulative counters across one epoch, tolerating one stats
/// reset inside the epoch (value going backwards ⇒ post-reset value is the
/// delta).
fn delta(cur: u64, prev: u64) -> u64 {
    if cur >= prev {
        cur - prev
    } else {
        cur
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Names of every series the sampler maintains, in export order.
pub const SERIES_NAMES: [&str; 18] = [
    "cte_hit_rate",
    "cte_hit_rate_pregathered",
    "cte_hit_rate_unified",
    "ml0_pages",
    "ml1_pages",
    "ml2_pages",
    "free_pages",
    "ml0_fraction",
    "promotions",
    "demotions",
    "expansions",
    "compactions",
    "row_hit_rate",
    "read_queue_depth",
    "read_queue_max_depth",
    "write_queue_depth",
    "write_queue_max_depth",
    "dram_blocks",
];

/// The epoch sampler: one [`TimeSeries`] per derived metric.
#[derive(Clone, Debug)]
pub struct Sampler {
    series: Vec<TimeSeries>,
    prev: Option<SampleSnapshot>,
    epochs: u64,
}

impl Sampler {
    /// Creates a sampler whose series each hold at most `capacity` bins.
    pub fn new(capacity: usize) -> Sampler {
        Sampler {
            series: SERIES_NAMES
                .iter()
                .map(|n| TimeSeries::new(n, capacity))
                .collect(),
            prev: None,
            epochs: 0,
        }
    }

    /// Epochs sampled so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// All series, in [`SERIES_NAMES`] order.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Looks a series up by name.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name() == name)
    }

    fn push(&mut self, name: &str, x: u64, value: f64) {
        let s = self
            .series
            .iter_mut()
            .find(|s| s.name() == name)
            .expect("series registered in SERIES_NAMES");
        s.push(x, value);
    }

    /// Records one epoch-boundary snapshot of the cumulative counters.
    ///
    /// A snapshot at the same instruction count as the previous one is
    /// dropped: no instructions retired means no activity, and recording
    /// it would append a spurious all-zero-rate point (this happens when
    /// the closing sample at the end of a run coincides with the last
    /// epoch boundary).
    pub fn sample(&mut self, snap: SampleSnapshot) {
        if self
            .prev
            .as_ref()
            .is_some_and(|p| p.instructions == snap.instructions)
        {
            return;
        }
        self.epochs += 1;
        let x = snap.instructions;
        let prev = self.prev.take().unwrap_or_default();

        // CTE cache: epoch-local hit rates, split by serving block kind.
        let hits_pg = delta(
            snap.mc.cte_hits_pregathered.get(),
            prev.mc.cte_hits_pregathered.get(),
        );
        let hits_uni = delta(
            snap.mc.cte_hits_unified.get(),
            prev.mc.cte_hits_unified.get(),
        );
        let misses = delta(snap.mc.cte_misses.get(), prev.mc.cte_misses.get());
        let lookups = hits_pg + hits_uni + misses;
        self.push("cte_hit_rate", x, ratio(hits_pg + hits_uni, lookups));
        self.push("cte_hit_rate_pregathered", x, ratio(hits_pg, lookups));
        self.push("cte_hit_rate_unified", x, ratio(hits_uni, lookups));

        // Occupancy gauges.
        let occ = &snap.occupancy;
        self.push("ml0_pages", x, occ.ml0_pages as f64);
        self.push("ml1_pages", x, occ.ml1_pages as f64);
        self.push("ml2_pages", x, occ.ml2_pages as f64);
        self.push("free_pages", x, occ.free_pages as f64);
        self.push("ml0_fraction", x, occ.ml0_fraction_of_uncompressed());

        // Policy activity per epoch.
        self.push(
            "promotions",
            x,
            delta(snap.mc.promotions.get(), prev.mc.promotions.get()) as f64,
        );
        self.push(
            "demotions",
            x,
            delta(snap.mc.demotions.get(), prev.mc.demotions.get()) as f64,
        );
        self.push(
            "expansions",
            x,
            delta(snap.mc.expansions.get(), prev.mc.expansions.get()) as f64,
        );
        self.push(
            "compactions",
            x,
            delta(snap.mc.compactions.get(), prev.mc.compactions.get()) as f64,
        );

        // DRAM: epoch-local row-buffer hit rate, queue depth, traffic.
        let row_hits = delta(snap.dram.row_hits.get(), prev.dram.row_hits.get());
        let blocks = delta(snap.dram.total_blocks(), prev.dram.total_blocks());
        self.push("row_hit_rate", x, ratio(row_hits, blocks));
        let rd_submits = delta(snap.queue.read_submits, prev.queue.read_submits);
        let rd_depth_sum = delta(snap.queue.read_depth_sum, prev.queue.read_depth_sum);
        self.push("read_queue_depth", x, ratio(rd_depth_sum, rd_submits));
        self.push("read_queue_max_depth", x, snap.queue.read_max_depth as f64);
        let wr_submits = delta(snap.queue.write_submits, prev.queue.write_submits);
        let wr_depth_sum = delta(snap.queue.write_depth_sum, prev.queue.write_depth_sum);
        self.push("write_queue_depth", x, ratio(wr_depth_sum, wr_submits));
        self.push(
            "write_queue_max_depth",
            x,
            snap.queue.write_max_depth as f64,
        );
        self.push("dram_blocks", x, blocks as f64);

        self.prev = Some(snap);
    }
}

impl Snapshot for SampleSnapshot {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.instructions);
        self.mc.write_snapshot(w);
        self.dram.write_snapshot(w);
        self.occupancy.write_snapshot(w);
        self.queue.write_snapshot(w);
    }
}

impl Restore for SampleSnapshot {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.instructions = r.u64()?;
        self.mc.restore_snapshot(r)?;
        self.dram.restore_snapshot(r)?;
        self.occupancy.restore_snapshot(r)?;
        self.queue.restore_snapshot(r)?;
        Ok(())
    }
}

impl Snapshot for Sampler {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.epochs);
        w.seq(self.series.len());
        for s in &self.series {
            s.write_snapshot(w);
        }
        match &self.prev {
            Some(p) => {
                w.bool(true);
                p.write_snapshot(w);
            }
            None => w.bool(false),
        }
    }
}

impl Restore for Sampler {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.epochs = r.u64()?;
        r.fixed_seq(self.series.len(), "sampler series count")?;
        for s in &mut self.series {
            s.restore_snapshot(r)?;
        }
        self.prev = if r.bool()? {
            let mut p = SampleSnapshot::default();
            p.restore_snapshot(r)?;
            Some(p)
        } else {
            None
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(instructions: u64, hits: u64, misses: u64, promotions: u64) -> SampleSnapshot {
        let mut s = SampleSnapshot {
            instructions,
            ..SampleSnapshot::default()
        };
        for _ in 0..hits {
            s.mc.cte_hits_unified.incr();
        }
        for _ in 0..misses {
            s.mc.cte_misses.incr();
        }
        for _ in 0..promotions {
            s.mc.promotions.incr();
        }
        s
    }

    #[test]
    fn registers_every_named_series() {
        let s = Sampler::new(16);
        assert_eq!(s.series().len(), SERIES_NAMES.len());
        for name in SERIES_NAMES {
            assert!(s.get(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn rates_are_epoch_local() {
        let mut s = Sampler::new(16);
        // Epoch 1: 8/10 hits. Epoch 2: 0 additional hits, 10 more misses.
        s.sample(snap(1000, 8, 2, 0));
        s.sample(snap(2000, 8, 12, 0));
        let bins = s.get("cte_hit_rate").unwrap().bins();
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].mean(), 0.8);
        assert_eq!(bins[1].mean(), 0.0, "second epoch had only misses");
    }

    #[test]
    fn counter_reset_is_not_a_negative_delta() {
        let mut s = Sampler::new(16);
        s.sample(snap(1000, 80, 20, 5));
        // Stats were reset (measurement start): cumulative values dropped.
        s.sample(snap(2000, 4, 1, 2));
        let bins = s.get("promotions").unwrap().bins();
        assert_eq!(bins[1].mean(), 2.0, "post-reset value is the delta");
        assert_eq!(s.get("cte_hit_rate").unwrap().bins()[1].mean(), 0.8);
    }

    #[test]
    fn zero_activity_epoch_is_all_zeroes_not_nan() {
        let mut s = Sampler::new(16);
        s.sample(snap(1000, 0, 0, 0));
        for series in s.series() {
            let b = series.last().unwrap();
            assert!(b.mean().is_finite(), "{}", series.name());
        }
    }

    #[test]
    fn x_axis_is_instructions() {
        let mut s = Sampler::new(16);
        s.sample(snap(123, 1, 1, 0));
        s.sample(snap(456, 2, 2, 0));
        let bins = s.get("dram_blocks").unwrap().bins();
        assert_eq!(bins[0].x_start, 123);
        assert_eq!(bins[1].x_start, 456);
        assert_eq!(s.epochs(), 2);
    }

    #[test]
    fn zero_instruction_epoch_is_dropped() {
        let mut s = Sampler::new(16);
        s.sample(snap(1000, 8, 2, 0));
        // The run's closing sample can coincide with the last epoch
        // boundary; it must not append a spurious zero-rate point.
        s.sample(snap(1000, 8, 2, 0));
        assert_eq!(s.epochs(), 1);
        assert_eq!(s.get("cte_hit_rate").unwrap().bins().len(), 1);
    }
}
