//! Per-access latency attribution: where do the cycles go?
//!
//! Every retired access arrives as an
//! [`AccessRecord`](dylect_sim_core::probe::AccessRecord) whose component
//! cycles sum exactly to its end-to-end latency (conservation by
//! construction — see `AccessRecord::new`). This module aggregates them
//! two ways:
//!
//! - **Histograms**: one [`LogHistogram`] of end-to-end latency per
//!   (scope, request class, memory level, translation path) combination, so
//!   p50/p95/p99/p999 can be compared across e.g. short-CTE-hit ML0 reads
//!   vs. CTE-miss ML2 reads.
//! - **Component totals**: per scope, total cycles spent in each
//!   [`AccessComponent`] — the top-down "where cycles go" table.
//!
//! The two scopes (core retirement vs. shared-memory access) observe
//! overlapping time and are kept strictly separate; summing them would
//! double-count.
//!
//! Sampled request spans ([`SpanRecord`]) are retained here too (bounded),
//! for the Chrome-trace export.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use dylect_sim_core::probe::{
    AccessComponent, AccessRecord, AccessScope, MemLevel, RequestClass, SpanPhase, SpanRecord,
    TranslationPath,
};
use dylect_sim_core::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use dylect_sim_core::stats::LogHistogram;
use dylect_sim_core::Time;

/// Key of one end-to-end latency histogram.
pub type HistKey = (AccessScope, RequestClass, MemLevel, TranslationPath);

/// Aggregated latency attribution for one run.
#[derive(Clone, Debug)]
pub struct Attribution {
    hists: BTreeMap<HistKey, LogHistogram>,
    /// Total picoseconds per component, per scope.
    component_ps: [[u64; AccessComponent::ALL.len()]; AccessScope::ALL.len()],
    /// Records seen per scope.
    records: [u64; AccessScope::ALL.len()],
    spans: Vec<SpanRecord>,
    span_capacity: usize,
    spans_dropped: u64,
}

impl Attribution {
    /// Creates an empty aggregator retaining at most `span_capacity`
    /// sampled spans.
    pub fn new(span_capacity: usize) -> Attribution {
        Attribution {
            hists: BTreeMap::new(),
            component_ps: [[0; AccessComponent::ALL.len()]; AccessScope::ALL.len()],
            records: [0; AccessScope::ALL.len()],
            spans: Vec::new(),
            span_capacity,
            spans_dropped: 0,
        }
    }

    /// Folds one attributed access in.
    pub fn record(&mut self, rec: &AccessRecord) {
        debug_assert_eq!(
            rec.attributed(),
            rec.total,
            "attribution records must be conservative"
        );
        self.hists
            .entry((rec.scope, rec.class, rec.level, rec.path))
            .or_default()
            .record(rec.total);
        let s = rec.scope as usize;
        self.records[s] += 1;
        for (i, t) in rec.components.iter().enumerate() {
            self.component_ps[s][i] += t.as_ps();
        }
    }

    /// Retains one sampled span (up to the capacity; overflow is counted).
    pub fn record_span(&mut self, span: &SpanRecord) {
        if self.spans.len() < self.span_capacity {
            self.spans.push(*span);
        } else {
            self.spans_dropped += 1;
        }
    }

    /// The per-key histograms, in key order.
    pub fn histograms(&self) -> &BTreeMap<HistKey, LogHistogram> {
        &self.hists
    }

    /// Retained sampled spans, in emission order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Spans seen but not retained (capacity overflow).
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped
    }

    /// Accesses recorded under `scope`.
    pub fn records(&self, scope: AccessScope) -> u64 {
        self.records[scope as usize]
    }

    /// Total cycles attributed to `component` under `scope`.
    pub fn component_total(&self, scope: AccessScope, component: AccessComponent) -> Time {
        Time::from_ps(self.component_ps[scope as usize][component.index()])
    }

    /// Whether any access has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.iter().all(|&n| n == 0)
    }

    /// Renders the top-down "where cycles go" table: per scope, each
    /// component's total time, share of the scope's cycles, and mean per
    /// recorded access.
    pub fn cycles_table(&self) -> String {
        let mut out = String::new();
        for scope in AccessScope::ALL {
            let s = scope as usize;
            if self.records[s] == 0 {
                continue;
            }
            let total_ps: u64 = self.component_ps[s].iter().sum();
            let _ = writeln!(
                out,
                "where cycles go [{}] — {} accesses, {} total",
                scope.name(),
                self.records[s],
                Time::from_ps(total_ps),
            );
            let _ = writeln!(
                out,
                "  {:<14} {:>14} {:>7} {:>12}",
                "component", "total", "share", "mean/access"
            );
            for c in AccessComponent::ALL {
                let ps = self.component_ps[s][c.index()];
                if ps == 0 {
                    continue;
                }
                let share = if total_ps == 0 {
                    0.0
                } else {
                    100.0 * ps as f64 / total_ps as f64
                };
                let _ = writeln!(
                    out,
                    "  {:<14} {:>14} {:>6.2}% {:>12}",
                    c.name(),
                    Time::from_ps(ps).to_string(),
                    share,
                    Time::from_ps(ps / self.records[s]).to_string(),
                );
            }
        }
        if out.is_empty() {
            out.push_str("where cycles go: no accesses recorded\n");
        }
        out
    }
}

/// Index of `v` in its enum's `ALL` table (the snapshot-format rule: enums
/// travel as table indices, never raw discriminants).
fn tag<T: PartialEq + Copy>(all: &[T], v: T) -> u8 {
    all.iter().position(|&x| x == v).expect("in ALL") as u8
}

/// Histogram keys are written as indices into the probe enums' `ALL`
/// tables, in the `BTreeMap`'s (deterministic) key order.
impl Snapshot for Attribution {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        for scope in &self.component_ps {
            for &ps in scope {
                w.u64(ps);
            }
        }
        for &n in &self.records {
            w.u64(n);
        }
        w.u64(self.spans_dropped);
        w.seq(self.hists.len());
        for (&(scope, class, level, path), hist) in &self.hists {
            w.u8(tag(&AccessScope::ALL, scope));
            w.u8(tag(&RequestClass::ALL, class));
            w.u8(tag(&MemLevel::ALL, level));
            w.u8(tag(&TranslationPath::ALL, path));
            hist.write_snapshot(w);
        }
        w.seq(self.spans.len());
        for s in &self.spans {
            w.u64(s.id);
            w.u32(s.mc);
            w.u8(tag(&SpanPhase::ALL, s.phase));
            s.start.write_snapshot(w);
            s.end.write_snapshot(w);
            w.u64(s.page);
        }
    }
}

impl Restore for Attribution {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for scope in &mut self.component_ps {
            for ps in scope.iter_mut() {
                *ps = r.u64()?;
            }
        }
        for n in &mut self.records {
            *n = r.u64()?;
        }
        self.spans_dropped = r.u64()?;
        let bad_key = || SnapError::Corrupt("unknown histogram key tag");
        let n_hists = r.seq(4)?;
        self.hists.clear();
        for _ in 0..n_hists {
            let scope = *AccessScope::ALL.get(r.u8()? as usize).ok_or_else(bad_key)?;
            let class = *RequestClass::ALL
                .get(r.u8()? as usize)
                .ok_or_else(bad_key)?;
            let level = *MemLevel::ALL.get(r.u8()? as usize).ok_or_else(bad_key)?;
            let path = *TranslationPath::ALL
                .get(r.u8()? as usize)
                .ok_or_else(bad_key)?;
            let mut hist = LogHistogram::default();
            hist.restore_snapshot(r)?;
            if self
                .hists
                .insert((scope, class, level, path), hist)
                .is_some()
            {
                return Err(SnapError::Corrupt("duplicate histogram key"));
            }
        }
        let n_spans = r.seq(29)?;
        if n_spans > self.span_capacity {
            return Err(SnapError::Corrupt("spans exceed capacity"));
        }
        self.spans.clear();
        for _ in 0..n_spans {
            let id = r.u64()?;
            let mc = r.u32()?;
            let phase = *SpanPhase::ALL
                .get(r.u8()? as usize)
                .ok_or(SnapError::Corrupt("unknown span phase tag"))?;
            let mut start = Time::ZERO;
            start.restore_snapshot(r)?;
            let mut end = Time::ZERO;
            end.restore_snapshot(r)?;
            let page = r.u64()?;
            self.spans.push(SpanRecord {
                id,
                mc,
                phase,
                start,
                end,
                page,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand_record(total_ns: f64, dram_ns: f64) -> AccessRecord {
        AccessRecord::new(
            AccessScope::Mem,
            RequestClass::Demand,
            MemLevel::Ml0,
            TranslationPath::ShortCteHit,
            Time::ZERO,
            Time::from_ns(total_ns),
            &[(AccessComponent::DramService, Time::from_ns(dram_ns))],
        )
    }

    #[test]
    fn records_are_keyed_by_outcome() {
        let mut a = Attribution::new(16);
        a.record(&demand_record(100.0, 60.0));
        a.record(&demand_record(120.0, 80.0));
        let other = AccessRecord::new(
            AccessScope::Mem,
            RequestClass::Demand,
            MemLevel::Ml2,
            TranslationPath::CteMiss,
            Time::ZERO,
            Time::from_ns(900.0),
            &[],
        );
        a.record(&other);
        assert_eq!(a.histograms().len(), 2);
        let key = (
            AccessScope::Mem,
            RequestClass::Demand,
            MemLevel::Ml0,
            TranslationPath::ShortCteHit,
        );
        assert_eq!(a.histograms()[&key].count(), 2);
        assert_eq!(a.records(AccessScope::Mem), 3);
        assert_eq!(a.records(AccessScope::Core), 0);
    }

    #[test]
    fn component_totals_conserve_cycles() {
        let mut a = Attribution::new(16);
        a.record(&demand_record(100.0, 60.0));
        a.record(&demand_record(50.0, 50.0));
        let dram = a.component_total(AccessScope::Mem, AccessComponent::DramService);
        let other = a.component_total(AccessScope::Mem, AccessComponent::Other);
        assert_eq!(dram, Time::from_ns(110.0));
        assert_eq!(other, Time::from_ns(40.0));
        let total: u64 = AccessComponent::ALL
            .iter()
            .map(|&c| a.component_total(AccessScope::Mem, c).as_ps())
            .sum();
        assert_eq!(Time::from_ps(total), Time::from_ns(150.0));
    }

    #[test]
    fn span_retention_is_bounded() {
        use dylect_sim_core::probe::SpanPhase;
        let mut a = Attribution::new(2);
        for i in 0..5 {
            a.record_span(&SpanRecord {
                id: i,
                mc: 0,
                phase: SpanPhase::Request,
                start: Time::ZERO,
                end: Time::from_ns(1.0),
                page: i,
            });
        }
        assert_eq!(a.spans().len(), 2);
        assert_eq!(a.spans_dropped(), 3);
    }

    #[test]
    fn cycles_table_renders_nonempty_components() {
        let mut a = Attribution::new(4);
        assert!(a.cycles_table().contains("no accesses"));
        a.record(&demand_record(100.0, 60.0));
        let table = a.cycles_table();
        assert!(table.contains("where cycles go [mem]"), "{table}");
        assert!(table.contains("dram_service"), "{table}");
        assert!(table.contains("other"), "{table}");
        assert!(!table.contains("tlb_walk"), "zero rows are skipped");
    }
}
