//! `dylect-stats` — inspect and compare simulator telemetry exports.
//!
//! ```text
//! dylect-stats dump <file>
//! dylect-stats summary <file>
//! dylect-stats diff <a> <b> [--abs-tol X] [--rel-tol Y]
//! ```
//!
//! Two file kinds are understood:
//!
//! - `*.jsonl` telemetry exports (`<stem>.series.jsonl`,
//!   `<stem>.events.jsonl`, `<stem>.latency.jsonl`) — flat JSON objects,
//!   one per line;
//! - `*.report` run-report cache records (the `KvWriter` format used under
//!   `results/cache/`), where floats are stored as exact bit patterns.
//!
//! `summary` renders series files as per-series aggregates and latency
//! files as percentile (p50/p95/p99/p999) and component-total tables.
//!
//! `diff` compares two files of the same kind; numeric fields may differ by
//! at most the configured tolerances (`--abs-tol`, `--rel-tol`, both
//! defaulting to 0 = exact). Exit codes distinguish the failure modes so CI
//! gates can react differently to drift vs. schema changes: 0 when
//! identical within tolerance, 1 when a shared metric is out of tolerance,
//! 2 on usage or I/O errors, 3 when the only differences are missing
//! metrics/rows (present on one side only).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::process::ExitCode;

use dylect_telemetry::export::{parse_flat_object, FlatValue};

/// Writes one line to stdout, dying quietly with the conventional SIGPIPE
/// status when the downstream reader has gone away (`dylect-stats dump … |
/// head` must not panic).
fn outln_impl(args: std::fmt::Arguments) {
    let mut out = std::io::stdout().lock();
    if out
        .write_fmt(args)
        .and_then(|()| out.write_all(b"\n"))
        .is_err()
    {
        std::process::exit(141);
    }
}

macro_rules! outln {
    ($($arg:tt)*) => { outln_impl(format_args!($($arg)*)) };
}

struct Tolerance {
    abs: f64,
    rel: f64,
}

impl Tolerance {
    fn close(&self, a: f64, b: f64) -> bool {
        if a == b {
            return true;
        }
        let d = (a - b).abs();
        d <= self.abs || d <= self.rel * a.abs().max(b.abs())
    }
}

/// What a file parsed into.
enum Parsed {
    /// Flat JSONL: one object per line.
    Jsonl(Vec<BTreeMap<String, FlatValue>>),
    /// A `KvWriter` record: key → raw string value.
    Report(BTreeMap<String, String>),
}

fn load(path: &str) -> Result<Parsed, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".report") || looks_like_report(&text) {
        return parse_report(&text)
            .map(Parsed::Report)
            .ok_or_else(|| format!("{path}: malformed report record"));
    }
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = parse_flat_object(line)
            .ok_or_else(|| format!("{path}:{}: malformed JSONL line", i + 1))?;
        rows.push(obj);
    }
    Ok(Parsed::Jsonl(rows))
}

/// KvWriter records are multi-line `{ "key": "value", ... }`; JSONL files
/// are one object per line.
fn looks_like_report(text: &str) -> bool {
    text.trim_start().starts_with("{\n") || text.trim() == "{}"
}

fn parse_report(text: &str) -> Option<BTreeMap<String, String>> {
    let body = text.trim();
    let body = body.strip_prefix('{')?.strip_suffix('}')?;
    let mut map = BTreeMap::new();
    for line in body.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() {
            continue;
        }
        let rest = line.strip_prefix('"')?;
        let (key, rest) = rest.split_once("\": \"")?;
        let value = rest.strip_suffix('"')?;
        map.insert(key.to_string(), value.to_string());
    }
    Some(map)
}

/// Decodes a report value: `f64:<hexbits> <approx>` → the exact float, a
/// plain integer → that value; anything else stays a string.
fn report_number(raw: &str) -> Option<f64> {
    if let Some(v) = raw.strip_prefix("f64:") {
        let hex = v.split(' ').next()?;
        return Some(f64::from_bits(u64::from_str_radix(hex, 16).ok()?));
    }
    raw.parse::<u64>().ok().map(|v| v as f64)
}

fn fmt_value(v: &FlatValue) -> String {
    match v {
        FlatValue::Number(n) => format!("{n:?}"),
        FlatValue::String(s) => s.clone(),
    }
}

/// A human label for a JSONL row: its identifying keys if present, else
/// its position.
fn row_label(row: &BTreeMap<String, FlatValue>, index: usize) -> String {
    let mut label = String::new();
    for key in [
        "series",
        "summary",
        "event",
        "hist",
        "shadow",
        "kind",
        "config",
        "page_life",
        "rank",
        "peak",
        "scope",
        "class",
        "level",
        "path",
        "component",
        "x_start",
        "ts_ps",
    ] {
        if let Some(v) = row.get(key) {
            if !label.is_empty() {
                label.push(' ');
            }
            let _ = write!(label, "{key}={}", fmt_value(v));
        }
    }
    if label.is_empty() {
        format!("line {}", index + 1)
    } else {
        label
    }
}

fn dump(parsed: &Parsed) {
    match parsed {
        Parsed::Jsonl(rows) => {
            for row in rows {
                let fields: Vec<String> = row
                    .iter()
                    .map(|(k, v)| format!("{k}={}", fmt_value(v)))
                    .collect();
                outln!("{}", fields.join(" "));
            }
        }
        Parsed::Report(map) => {
            for (k, v) in map {
                outln!("{k} = {v}");
            }
        }
    }
}

/// Renders latency-export rows (`"hist":"latency"` histograms and
/// `"hist":"components"` totals); returns whether anything was printed.
fn latency_summary(rows: &[BTreeMap<String, FlatValue>]) -> bool {
    let get_str = |row: &BTreeMap<String, FlatValue>, key: &str| -> String {
        row.get(key)
            .and_then(|v| v.as_str().map(str::to_owned))
            .unwrap_or_else(|| "?".to_owned())
    };
    let get_num = |row: &BTreeMap<String, FlatValue>, key: &str| -> f64 {
        row.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
    };
    let hists: Vec<_> = rows
        .iter()
        .filter(|r| r.get("hist").and_then(|v| v.as_str()) == Some("latency"))
        .collect();
    let mut printed = false;
    if !hists.is_empty() {
        outln!(
            "{:<5} {:<10} {:<5} {:<14} {:>9} {:>11} {:>11} {:>11} {:>11} {:>11}",
            "scope",
            "class",
            "level",
            "path",
            "count",
            "mean_ns",
            "p50_ns",
            "p95_ns",
            "p99_ns",
            "p999_ns"
        );
        for row in &hists {
            outln!(
                "{:<5} {:<10} {:<5} {:<14} {:>9} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>11.1}",
                get_str(row, "scope"),
                get_str(row, "class"),
                get_str(row, "level"),
                get_str(row, "path"),
                get_num(row, "count"),
                get_num(row, "mean_ps") / 1000.0,
                get_num(row, "p50_ps") / 1000.0,
                get_num(row, "p95_ps") / 1000.0,
                get_num(row, "p99_ps") / 1000.0,
                get_num(row, "p999_ps") / 1000.0,
            );
        }
        printed = true;
    }
    let comps: Vec<_> = rows
        .iter()
        .filter(|r| r.get("hist").and_then(|v| v.as_str()) == Some("components"))
        .collect();
    if !comps.is_empty() {
        if printed {
            outln!("");
        }
        outln!(
            "{:<5} {:<14} {:>14} {:>10}",
            "scope",
            "component",
            "total_us",
            "records"
        );
        for row in &comps {
            outln!(
                "{:<5} {:<14} {:>14.3} {:>10}",
                get_str(row, "scope"),
                get_str(row, "component"),
                get_num(row, "total_ps") / 1e6,
                get_num(row, "records"),
            );
        }
        printed = true;
    }
    if let Some(spans) = rows
        .iter()
        .find(|r| r.get("hist").and_then(|v| v.as_str()) == Some("spans"))
    {
        outln!(
            "spans: {} retained, {} dropped",
            get_num(spans, "retained"),
            get_num(spans, "dropped")
        );
        printed = true;
    }
    printed
}

/// Renders shadow-export rows (`"shadow"` miss-class/config tables and
/// `"page_life"` lifetime/ping-pong/residency tables); returns whether
/// anything was printed.
fn shadow_summary(rows: &[BTreeMap<String, FlatValue>]) -> bool {
    let get_str = |row: &BTreeMap<String, FlatValue>, key: &str| -> String {
        row.get(key)
            .and_then(|v| v.as_str().map(str::to_owned))
            .unwrap_or_else(|| "?".to_owned())
    };
    let get_num = |row: &BTreeMap<String, FlatValue>, key: &str| -> f64 {
        row.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
    };
    let of_kind = |disc: &str, kind: &str| -> Vec<&BTreeMap<String, FlatValue>> {
        rows.iter()
            .filter(|r| r.get(disc).and_then(|v| v.as_str()) == Some(kind))
            .collect()
    };
    let mut printed = false;
    let classes = of_kind("shadow", "miss_class");
    if !classes.is_empty() {
        outln!(
            "{:<12} {:>10} {:>11} {:>11} {:>10} {:>10}",
            "cte_kind",
            "hits",
            "misses",
            "compulsory",
            "capacity",
            "conflict"
        );
        for row in &classes {
            outln!(
                "{:<12} {:>10} {:>11} {:>11} {:>10} {:>10}",
                get_str(row, "kind"),
                get_num(row, "real_hits"),
                get_num(row, "real_misses"),
                get_num(row, "compulsory"),
                get_num(row, "capacity"),
                get_num(row, "conflict"),
            );
        }
        printed = true;
    }
    let configs = of_kind("shadow", "config");
    if !configs.is_empty() {
        if printed {
            outln!("");
        }
        outln!(
            "{:<12} {:>12} {:>5} {:>11} {:>11} {:>9}",
            "config",
            "capacity_kib",
            "ways",
            "hits",
            "lookups",
            "hit_rate"
        );
        for row in &configs {
            let cap = get_num(row, "capacity_bytes");
            let cap = if cap == 0.0 {
                "inf".to_owned()
            } else {
                format!("{:.0}", cap / 1024.0)
            };
            let ways = get_num(row, "ways");
            let ways = if ways == 0.0 {
                "full".to_owned()
            } else {
                format!("{ways:.0}")
            };
            outln!(
                "{:<12} {:>12} {:>5} {:>11} {:>11} {:>9.4}",
                get_str(row, "config"),
                cap,
                ways,
                get_num(row, "hits"),
                get_num(row, "lookups"),
                get_num(row, "hit_rate"),
            );
        }
        printed = true;
    }
    let levels = of_kind("page_life", "level");
    if !levels.is_empty() {
        if printed {
            outln!("");
        }
        outln!(
            "{:<6} {:>14} {:>15} {:>10}",
            "level",
            "dwell_ops",
            "resident_pages",
            "entries"
        );
        for row in &levels {
            outln!(
                "{:<6} {:>14} {:>15} {:>10}",
                get_str(row, "level"),
                get_num(row, "dwell_ops"),
                get_num(row, "resident_pages"),
                get_num(row, "entries"),
            );
        }
        printed = true;
    }
    if let Some(pp) = of_kind("page_life", "pingpong").first() {
        outln!(
            "pages: {} tracked, {} ping-ponging",
            get_num(pp, "pages_tracked"),
            get_num(pp, "pingpong_pages")
        );
        printed = true;
    }
    let top = of_kind("page_life", "top");
    if !top.is_empty() {
        outln!(
            "{:<5} {:>4} {:>12} {:>7} {:>14} {:>11} {:>10}",
            "rank",
            "mc",
            "page",
            "trips",
            "pingpong_evts",
            "promotions",
            "demotions"
        );
        for row in &top {
            outln!(
                "{:<5} {:>4} {:>12} {:>7} {:>14} {:>11} {:>10}",
                get_num(row, "rank"),
                get_num(row, "mc"),
                get_num(row, "page"),
                get_num(row, "trips"),
                get_num(row, "pingpong_events"),
                get_num(row, "promotions"),
                get_num(row, "demotions"),
            );
        }
        printed = true;
    }
    let residency = of_kind("page_life", "residency");
    if !residency.is_empty() {
        let buckets: Vec<String> = residency
            .iter()
            .map(|r| format!("{}:{}", get_num(r, "peak"), get_num(r, "groups")))
            .collect();
        outln!("ml0 residency peaks (peak:groups): {}", buckets.join(" "));
        printed = true;
    }
    printed
}

fn summary(parsed: &Parsed) {
    match parsed {
        Parsed::Jsonl(rows) => {
            if shadow_summary(rows) {
                return;
            }
            if latency_summary(rows) {
                return;
            }
            // Group series bins by name; fall back to event kinds.
            let mut groups: BTreeMap<String, (u64, u64, f64, f64, f64)> = BTreeMap::new();
            for row in rows {
                let Some(name) = row.get("series").and_then(|v| v.as_str()) else {
                    continue;
                };
                let count = row.get("count").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
                let min = row.get("min").and_then(|v| v.as_f64()).unwrap_or(0.0);
                let max = row.get("max").and_then(|v| v.as_f64()).unwrap_or(0.0);
                let mean = row.get("mean").and_then(|v| v.as_f64()).unwrap_or(0.0);
                let e = groups
                    .entry(name.to_string())
                    .or_insert((0, 0, f64::MAX, f64::MIN, 0.0));
                e.0 += 1;
                e.1 += count;
                e.2 = e.2.min(min);
                e.3 = e.3.max(max);
                e.4 = mean; // last bin's mean wins: the settled value
            }
            if groups.is_empty() {
                outln!("{} rows (no series records)", rows.len());
                return;
            }
            outln!(
                "{:<26} {:>6} {:>9} {:>12} {:>12} {:>12}",
                "series",
                "bins",
                "samples",
                "min",
                "max",
                "last_mean"
            );
            for (name, (bins, samples, min, max, last)) in &groups {
                outln!("{name:<26} {bins:>6} {samples:>9} {min:>12.4} {max:>12.4} {last:>12.4}");
            }
        }
        Parsed::Report(map) => {
            outln!("report record with {} keys", map.len());
            for (k, v) in map {
                outln!("{k} = {v}");
            }
        }
    }
}

/// One reported difference. Missing metrics (a key or row present on only
/// one side) are distinguished from value drift so `diff` can exit with a
/// dedicated code for schema changes.
struct Diff {
    missing: bool,
    msg: String,
}

impl Diff {
    fn value(msg: String) -> Diff {
        Diff {
            missing: false,
            msg,
        }
    }

    fn missing(msg: String) -> Diff {
        Diff { missing: true, msg }
    }
}

fn diff_numbers(label: &str, a: f64, b: f64, tol: &Tolerance, diffs: &mut Vec<Diff>) {
    if !tol.close(a, b) {
        diffs.push(Diff::value(format!(
            "{label}: {a:?} != {b:?} (delta {:?})",
            (a - b).abs()
        )));
    }
}

fn diff(a: &Parsed, b: &Parsed, tol: &Tolerance) -> Vec<Diff> {
    let mut diffs = Vec::new();
    match (a, b) {
        (Parsed::Jsonl(ra), Parsed::Jsonl(rb)) => {
            if ra.len() != rb.len() {
                diffs.push(Diff::missing(format!(
                    "row counts differ: {} vs {}",
                    ra.len(),
                    rb.len()
                )));
            }
            for (i, (rowa, rowb)) in ra.iter().zip(rb.iter()).enumerate() {
                let label = row_label(rowa, i);
                for (key, va) in rowa {
                    match (va, rowb.get(key)) {
                        (_, None) => {
                            diffs.push(Diff::missing(format!("{label}: {key} missing in second")));
                        }
                        (FlatValue::Number(x), Some(FlatValue::Number(y))) => {
                            diff_numbers(&format!("{label}: {key}"), *x, *y, tol, &mut diffs);
                        }
                        (va, Some(vb)) => {
                            if va != vb {
                                diffs.push(Diff::value(format!(
                                    "{label}: {key}: {} != {}",
                                    fmt_value(va),
                                    fmt_value(vb)
                                )));
                            }
                        }
                    }
                }
                for key in rowb.keys() {
                    if !rowa.contains_key(key) {
                        diffs.push(Diff::missing(format!("{label}: {key} missing in first")));
                    }
                }
            }
        }
        (Parsed::Report(ma), Parsed::Report(mb)) => {
            for (key, va) in ma {
                match mb.get(key) {
                    None => diffs.push(Diff::missing(format!("{key}: missing in second"))),
                    Some(vb) if va == vb => {}
                    Some(vb) => match (report_number(va), report_number(vb)) {
                        (Some(x), Some(y)) => diff_numbers(key, x, y, tol, &mut diffs),
                        _ => diffs.push(Diff::value(format!("{key}: {va} != {vb}"))),
                    },
                }
            }
            for key in mb.keys() {
                if !ma.contains_key(key) {
                    diffs.push(Diff::missing(format!("{key}: missing in first")));
                }
            }
        }
        _ => diffs.push(Diff::value(
            "files are of different kinds (jsonl vs report)".to_string(),
        )),
    }
    diffs
}

const USAGE: &str = "usage:
  dylect-stats dump <file>
  dylect-stats summary <file>
  dylect-stats diff <a> <b> [--abs-tol X] [--rel-tol Y]

diff exit codes: 0 identical within tolerance, 1 metric out of tolerance,
2 usage/IO error, 3 only missing metrics/rows";

fn run() -> Result<u8, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("dump") | Some("summary") if args.len() == 2 => {
            let parsed = load(&args[1])?;
            if args[0] == "dump" {
                dump(&parsed);
            } else {
                summary(&parsed);
            }
            Ok(0)
        }
        Some("diff") if args.len() >= 3 => {
            let mut tol = Tolerance { abs: 0.0, rel: 0.0 };
            let mut i = 3;
            while i < args.len() {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{} needs a value", args[i]))?
                    .parse::<f64>()
                    .map_err(|e| format!("{}: {e}", args[i]))?;
                match args[i].as_str() {
                    "--abs-tol" => tol.abs = value,
                    "--rel-tol" => tol.rel = value,
                    other => return Err(format!("unknown flag {other}\n{USAGE}")),
                }
                i += 2;
            }
            let a = load(&args[1])?;
            let b = load(&args[2])?;
            let diffs = diff(&a, &b, &tol);
            if diffs.is_empty() {
                outln!(
                    "identical within tolerance (abs {}, rel {})",
                    tol.abs,
                    tol.rel
                );
                Ok(0)
            } else {
                for d in &diffs {
                    outln!("{}", d.msg);
                }
                let missing = diffs.iter().filter(|d| d.missing).count();
                outln!(
                    "{} difference(s) ({missing} missing metric(s))",
                    diffs.len()
                );
                Ok(if missing == diffs.len() { 3 } else { 1 })
            }
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_semantics() {
        let exact = Tolerance { abs: 0.0, rel: 0.0 };
        assert!(exact.close(1.0, 1.0));
        assert!(!exact.close(1.0, 1.0000001));
        let abs = Tolerance { abs: 0.1, rel: 0.0 };
        assert!(abs.close(1.0, 1.05));
        assert!(!abs.close(1.0, 1.2));
        let rel = Tolerance {
            abs: 0.0,
            rel: 0.01,
        };
        assert!(rel.close(100.0, 100.5));
        assert!(!rel.close(100.0, 102.0));
    }

    #[test]
    fn report_parsing_decodes_exact_floats() {
        let text = format!(
            "{{\n\"a\": \"42\",\n\"b\": \"f64:{:016x} {:e}\",\n}}\n",
            0.5f64.to_bits(),
            0.5f64
        );
        let map = parse_report(&text).unwrap();
        assert_eq!(report_number(&map["a"]), Some(42.0));
        assert_eq!(report_number(&map["b"]), Some(0.5));
    }

    #[test]
    fn identical_jsonl_has_no_diffs() {
        let rows = vec![parse_flat_object(r#"{"series":"s","x_start":1,"mean":0.5}"#).unwrap()];
        let a = Parsed::Jsonl(rows.clone());
        let b = Parsed::Jsonl(rows);
        let tol = Tolerance { abs: 0.0, rel: 0.0 };
        assert!(diff(&a, &b, &tol).is_empty());
    }

    #[test]
    fn jsonl_diff_finds_numeric_drift_and_respects_tolerance() {
        let a = Parsed::Jsonl(vec![parse_flat_object(
            r#"{"series":"s","x_start":1,"mean":0.5}"#,
        )
        .unwrap()]);
        let b = Parsed::Jsonl(vec![parse_flat_object(
            r#"{"series":"s","x_start":1,"mean":0.6}"#,
        )
        .unwrap()]);
        let exact = Tolerance { abs: 0.0, rel: 0.0 };
        let found = diff(&a, &b, &exact);
        assert_eq!(found.len(), 1);
        assert!(found[0].msg.contains("series=s"), "{}", found[0].msg);
        assert!(!found[0].missing, "drift is not a missing metric");
        let loose = Tolerance { abs: 0.2, rel: 0.0 };
        assert!(diff(&a, &b, &loose).is_empty());
    }

    #[test]
    fn missing_keys_and_rows_are_reported_as_missing() {
        let a = Parsed::Jsonl(vec![parse_flat_object(r#"{"x":1,"y":2}"#).unwrap()]);
        let b = Parsed::Jsonl(vec![
            parse_flat_object(r#"{"x":1}"#).unwrap(),
            BTreeMap::new(),
        ]);
        let tol = Tolerance { abs: 0.0, rel: 0.0 };
        let found = diff(&a, &b, &tol);
        assert!(found.iter().any(|d| d.msg.contains("row counts differ")));
        assert!(found.iter().any(|d| d.msg.contains("missing in second")));
        assert!(
            found.iter().all(|d| d.missing),
            "all of these are missing-metric diffs"
        );
    }

    #[test]
    fn shadow_rows_render_and_label() {
        let rows = vec![
            parse_flat_object(
                r#"{"shadow":"miss_class","kind":"total","real_hits":10,"real_misses":4,"compulsory":2,"capacity":1,"conflict":1}"#,
            )
            .unwrap(),
            parse_flat_object(
                r#"{"shadow":"config","config":"x2_size","capacity_bytes":262144,"ways":8,"hits":12,"lookups":14,"hit_rate":0.857}"#,
            )
            .unwrap(),
            parse_flat_object(
                r#"{"page_life":"level","level":"ml0","dwell_ops":500,"resident_pages":3,"entries":7}"#,
            )
            .unwrap(),
            parse_flat_object(
                r#"{"page_life":"top","rank":0,"mc":0,"page":42,"trips":6,"pingpong_events":2,"promotions":7,"demotions":6}"#,
            )
            .unwrap(),
        ];
        assert!(shadow_summary(&rows), "shadow rows must render");
        let label = row_label(&rows[0], 0);
        assert!(label.contains("shadow=miss_class"), "{label}");
        assert!(label.contains("kind=total"), "{label}");
        let label = row_label(&rows[1], 1);
        assert!(label.contains("config=x2_size"), "{label}");
        let label = row_label(&rows[3], 3);
        assert!(label.contains("page_life=top"), "{label}");
        assert!(label.contains("rank=0"), "{label}");
        // Latency rows are untouched by the shadow renderer.
        let latency =
            vec![parse_flat_object(r#"{"hist":"latency","scope":"mem","count":1}"#).unwrap()];
        assert!(!shadow_summary(&latency));
    }

    #[test]
    fn latency_rows_label_with_their_outcome_key() {
        let row = parse_flat_object(
            r#"{"hist":"latency","scope":"mem","class":"demand","level":"ml0","path":"short_cte_hit","count":3}"#,
        )
        .unwrap();
        let label = row_label(&row, 0);
        assert!(label.contains("hist=latency"), "{label}");
        assert!(label.contains("path=short_cte_hit"), "{label}");
    }
}
