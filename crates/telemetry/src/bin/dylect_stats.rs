//! `dylect-stats` — inspect and compare simulator telemetry exports.
//!
//! ```text
//! dylect-stats dump <file>
//! dylect-stats summary <file>
//! dylect-stats diff <a> <b> [--abs-tol X] [--rel-tol Y]
//! ```
//!
//! Two file kinds are understood:
//!
//! - `*.jsonl` telemetry exports (`<stem>.series.jsonl`,
//!   `<stem>.events.jsonl`, `<stem>.latency.jsonl`) — flat JSON objects,
//!   one per line;
//! - `*.report` run-report cache records (the `KvWriter` format used under
//!   `results/cache/`), where floats are stored as exact bit patterns.
//!
//! `summary` renders series files as per-series aggregates and latency
//! files as percentile (p50/p95/p99/p999) and component-total tables.
//!
//! `diff` compares two files of the same kind; numeric fields may differ by
//! at most the configured tolerances (`--abs-tol`, `--rel-tol`, both
//! defaulting to 0 = exact). Exit codes distinguish the failure modes so CI
//! gates can react differently to drift vs. schema changes: 0 when
//! identical within tolerance, 1 when a shared metric is out of tolerance,
//! 2 on usage or I/O errors, 3 when the only differences are missing
//! metrics/rows (present on one side only).

use std::collections::BTreeMap;
use std::io::Write as _;
use std::process::ExitCode;

use dylect_telemetry::diff::{diff, fmt_value, load, outcome, Parsed, Tolerance};
use dylect_telemetry::export::FlatValue;

/// Writes one line to stdout, dying quietly with the conventional SIGPIPE
/// status when the downstream reader has gone away (`dylect-stats dump … |
/// head` must not panic).
fn outln_impl(args: std::fmt::Arguments) {
    let mut out = std::io::stdout().lock();
    if out
        .write_fmt(args)
        .and_then(|()| out.write_all(b"\n"))
        .is_err()
    {
        std::process::exit(141);
    }
}

macro_rules! outln {
    ($($arg:tt)*) => { outln_impl(format_args!($($arg)*)) };
}

fn dump(parsed: &Parsed) {
    match parsed {
        Parsed::Jsonl(rows) => {
            for row in rows {
                let fields: Vec<String> = row
                    .iter()
                    .map(|(k, v)| format!("{k}={}", fmt_value(v)))
                    .collect();
                outln!("{}", fields.join(" "));
            }
        }
        Parsed::Report(map) => {
            for (k, v) in map {
                outln!("{k} = {v}");
            }
        }
    }
}

/// Renders latency-export rows (`"hist":"latency"` histograms and
/// `"hist":"components"` totals); returns whether anything was printed.
fn latency_summary(rows: &[BTreeMap<String, FlatValue>]) -> bool {
    let get_str = |row: &BTreeMap<String, FlatValue>, key: &str| -> String {
        row.get(key)
            .and_then(|v| v.as_str().map(str::to_owned))
            .unwrap_or_else(|| "?".to_owned())
    };
    let get_num = |row: &BTreeMap<String, FlatValue>, key: &str| -> f64 {
        row.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
    };
    let hists: Vec<_> = rows
        .iter()
        .filter(|r| r.get("hist").and_then(|v| v.as_str()) == Some("latency"))
        .collect();
    let mut printed = false;
    if !hists.is_empty() {
        outln!(
            "{:<5} {:<10} {:<5} {:<14} {:>9} {:>11} {:>11} {:>11} {:>11} {:>11}",
            "scope",
            "class",
            "level",
            "path",
            "count",
            "mean_ns",
            "p50_ns",
            "p95_ns",
            "p99_ns",
            "p999_ns"
        );
        for row in &hists {
            outln!(
                "{:<5} {:<10} {:<5} {:<14} {:>9} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>11.1}",
                get_str(row, "scope"),
                get_str(row, "class"),
                get_str(row, "level"),
                get_str(row, "path"),
                get_num(row, "count"),
                get_num(row, "mean_ps") / 1000.0,
                get_num(row, "p50_ps") / 1000.0,
                get_num(row, "p95_ps") / 1000.0,
                get_num(row, "p99_ps") / 1000.0,
                get_num(row, "p999_ps") / 1000.0,
            );
        }
        printed = true;
    }
    let comps: Vec<_> = rows
        .iter()
        .filter(|r| r.get("hist").and_then(|v| v.as_str()) == Some("components"))
        .collect();
    if !comps.is_empty() {
        if printed {
            outln!("");
        }
        outln!(
            "{:<5} {:<14} {:>14} {:>10}",
            "scope",
            "component",
            "total_us",
            "records"
        );
        for row in &comps {
            outln!(
                "{:<5} {:<14} {:>14.3} {:>10}",
                get_str(row, "scope"),
                get_str(row, "component"),
                get_num(row, "total_ps") / 1e6,
                get_num(row, "records"),
            );
        }
        printed = true;
    }
    if let Some(spans) = rows
        .iter()
        .find(|r| r.get("hist").and_then(|v| v.as_str()) == Some("spans"))
    {
        outln!(
            "spans: {} retained, {} dropped",
            get_num(spans, "retained"),
            get_num(spans, "dropped")
        );
        printed = true;
    }
    printed
}

/// Renders shadow-export rows (`"shadow"` miss-class/config tables and
/// `"page_life"` lifetime/ping-pong/residency tables); returns whether
/// anything was printed.
fn shadow_summary(rows: &[BTreeMap<String, FlatValue>]) -> bool {
    let get_str = |row: &BTreeMap<String, FlatValue>, key: &str| -> String {
        row.get(key)
            .and_then(|v| v.as_str().map(str::to_owned))
            .unwrap_or_else(|| "?".to_owned())
    };
    let get_num = |row: &BTreeMap<String, FlatValue>, key: &str| -> f64 {
        row.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
    };
    let of_kind = |disc: &str, kind: &str| -> Vec<&BTreeMap<String, FlatValue>> {
        rows.iter()
            .filter(|r| r.get(disc).and_then(|v| v.as_str()) == Some(kind))
            .collect()
    };
    let mut printed = false;
    let classes = of_kind("shadow", "miss_class");
    if !classes.is_empty() {
        outln!(
            "{:<12} {:>10} {:>11} {:>11} {:>10} {:>10}",
            "cte_kind",
            "hits",
            "misses",
            "compulsory",
            "capacity",
            "conflict"
        );
        for row in &classes {
            outln!(
                "{:<12} {:>10} {:>11} {:>11} {:>10} {:>10}",
                get_str(row, "kind"),
                get_num(row, "real_hits"),
                get_num(row, "real_misses"),
                get_num(row, "compulsory"),
                get_num(row, "capacity"),
                get_num(row, "conflict"),
            );
        }
        printed = true;
    }
    let configs = of_kind("shadow", "config");
    if !configs.is_empty() {
        if printed {
            outln!("");
        }
        outln!(
            "{:<12} {:>12} {:>5} {:>11} {:>11} {:>9}",
            "config",
            "capacity_kib",
            "ways",
            "hits",
            "lookups",
            "hit_rate"
        );
        for row in &configs {
            let cap = get_num(row, "capacity_bytes");
            let cap = if cap == 0.0 {
                "inf".to_owned()
            } else {
                format!("{:.0}", cap / 1024.0)
            };
            let ways = get_num(row, "ways");
            let ways = if ways == 0.0 {
                "full".to_owned()
            } else {
                format!("{ways:.0}")
            };
            outln!(
                "{:<12} {:>12} {:>5} {:>11} {:>11} {:>9.4}",
                get_str(row, "config"),
                cap,
                ways,
                get_num(row, "hits"),
                get_num(row, "lookups"),
                get_num(row, "hit_rate"),
            );
        }
        printed = true;
    }
    let levels = of_kind("page_life", "level");
    if !levels.is_empty() {
        if printed {
            outln!("");
        }
        outln!(
            "{:<6} {:>14} {:>15} {:>10}",
            "level",
            "dwell_ops",
            "resident_pages",
            "entries"
        );
        for row in &levels {
            outln!(
                "{:<6} {:>14} {:>15} {:>10}",
                get_str(row, "level"),
                get_num(row, "dwell_ops"),
                get_num(row, "resident_pages"),
                get_num(row, "entries"),
            );
        }
        printed = true;
    }
    if let Some(pp) = of_kind("page_life", "pingpong").first() {
        outln!(
            "pages: {} tracked, {} ping-ponging",
            get_num(pp, "pages_tracked"),
            get_num(pp, "pingpong_pages")
        );
        printed = true;
    }
    let top = of_kind("page_life", "top");
    if !top.is_empty() {
        outln!(
            "{:<5} {:>4} {:>12} {:>7} {:>14} {:>11} {:>10}",
            "rank",
            "mc",
            "page",
            "trips",
            "pingpong_evts",
            "promotions",
            "demotions"
        );
        for row in &top {
            outln!(
                "{:<5} {:>4} {:>12} {:>7} {:>14} {:>11} {:>10}",
                get_num(row, "rank"),
                get_num(row, "mc"),
                get_num(row, "page"),
                get_num(row, "trips"),
                get_num(row, "pingpong_events"),
                get_num(row, "promotions"),
                get_num(row, "demotions"),
            );
        }
        printed = true;
    }
    let residency = of_kind("page_life", "residency");
    if !residency.is_empty() {
        let buckets: Vec<String> = residency
            .iter()
            .map(|r| format!("{}:{}", get_num(r, "peak"), get_num(r, "groups")))
            .collect();
        outln!("ml0 residency peaks (peak:groups): {}", buckets.join(" "));
        printed = true;
    }
    printed
}

/// Renders self-profiler rows (`"prof_phase"` timers, `"prof_worker"`
/// busy/utilization, one `"prof_summary"`); returns whether anything was
/// printed. Wall-clock percentages use the `wall_ns` meta field from the
/// summary row when present, and ns/op uses `measure_ops`.
fn prof_summary(rows: &[BTreeMap<String, FlatValue>]) -> bool {
    let get_str = |row: &BTreeMap<String, FlatValue>, key: &str| -> String {
        row.get(key)
            .and_then(|v| v.as_str().map(str::to_owned))
            .unwrap_or_else(|| "?".to_owned())
    };
    let get_num = |row: &BTreeMap<String, FlatValue>, key: &str| -> f64 {
        row.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
    };
    let phases: Vec<_> = rows
        .iter()
        .filter(|r| r.contains_key("prof_phase"))
        .collect();
    if phases.is_empty() {
        return false;
    }
    let meta = rows.iter().find(|r| r.contains_key("prof_summary"));
    let wall_ns = meta.map_or(0.0, |m| get_num(m, "wall_ns"));
    let measure_ops = meta.map_or(0.0, |m| get_num(m, "measure_ops"));
    outln!(
        "{:<16} {:<8} {:>12} {:>12} {:>10} {:>9} {:>9}",
        "phase",
        "kind",
        "est_calls",
        "est_ms",
        "ns/call",
        "pct_wall",
        "ns/op"
    );
    for row in &phases {
        let est_ns = get_num(row, "est_ns");
        let est_calls = get_num(row, "est_calls");
        let ns_per_call = if est_calls > 0.0 {
            est_ns / est_calls
        } else {
            0.0
        };
        let pct = if wall_ns > 0.0 {
            format!("{:.1}", 100.0 * est_ns / wall_ns)
        } else {
            "-".to_owned()
        };
        let ns_per_op = if measure_ops > 0.0 {
            format!("{:.2}", est_ns / measure_ops)
        } else {
            "-".to_owned()
        };
        outln!(
            "{:<16} {:<8} {:>12} {:>12.3} {:>10.1} {:>9} {:>9}",
            get_str(row, "prof_phase"),
            get_str(row, "kind"),
            est_calls,
            est_ns / 1e6,
            ns_per_call,
            pct,
            ns_per_op,
        );
    }
    let workers: Vec<_> = rows
        .iter()
        .filter(|r| r.contains_key("prof_worker"))
        .collect();
    if !workers.is_empty() {
        outln!("");
        outln!(
            "{:<8} {:>4} {:>12} {:>12} {:>9}",
            "pool",
            "wid",
            "busy_ms",
            "items",
            "util_pct"
        );
        for row in &workers {
            let busy_ns = get_num(row, "busy_ns");
            let util = if wall_ns > 0.0 {
                format!("{:.1}", 100.0 * busy_ns / wall_ns)
            } else {
                "-".to_owned()
            };
            outln!(
                "{:<8} {:>4} {:>12.3} {:>12} {:>9}",
                get_str(row, "prof_worker"),
                get_num(row, "wid"),
                busy_ns / 1e6,
                get_num(row, "items"),
                util,
            );
        }
    }
    if let Some(meta) = meta {
        outln!(
            "host spans: {} retained, {} dropped",
            get_num(meta, "retained"),
            get_num(meta, "dropped")
        );
    }
    true
}

fn summary(parsed: &Parsed) {
    match parsed {
        Parsed::Jsonl(rows) => {
            if shadow_summary(rows) {
                return;
            }
            if prof_summary(rows) {
                return;
            }
            if latency_summary(rows) {
                return;
            }
            // Group series bins by name; fall back to event kinds.
            let mut groups: BTreeMap<String, (u64, u64, f64, f64, f64)> = BTreeMap::new();
            for row in rows {
                let Some(name) = row.get("series").and_then(|v| v.as_str()) else {
                    continue;
                };
                let count = row.get("count").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
                let min = row.get("min").and_then(|v| v.as_f64()).unwrap_or(0.0);
                let max = row.get("max").and_then(|v| v.as_f64()).unwrap_or(0.0);
                let mean = row.get("mean").and_then(|v| v.as_f64()).unwrap_or(0.0);
                let e = groups
                    .entry(name.to_string())
                    .or_insert((0, 0, f64::MAX, f64::MIN, 0.0));
                e.0 += 1;
                e.1 += count;
                e.2 = e.2.min(min);
                e.3 = e.3.max(max);
                e.4 = mean; // last bin's mean wins: the settled value
            }
            if groups.is_empty() {
                outln!("{} rows (no series records)", rows.len());
                return;
            }
            outln!(
                "{:<26} {:>6} {:>9} {:>12} {:>12} {:>12}",
                "series",
                "bins",
                "samples",
                "min",
                "max",
                "last_mean"
            );
            for (name, (bins, samples, min, max, last)) in &groups {
                outln!("{name:<26} {bins:>6} {samples:>9} {min:>12.4} {max:>12.4} {last:>12.4}");
            }
        }
        Parsed::Report(map) => {
            outln!("report record with {} keys", map.len());
            for (k, v) in map {
                outln!("{k} = {v}");
            }
        }
    }
}

const USAGE: &str = "usage:
  dylect-stats dump <file>
  dylect-stats summary <file>
  dylect-stats diff <a> <b> [--abs-tol X] [--rel-tol Y]
  dylect-stats bisect <a.digest.jsonl> <b.digest.jsonl>
  dylect-stats bench-diff <BENCH.json>... [--gate-rel X] [--max-overhead-pct Y]

diff exit codes: 0 identical within tolerance, 1 metric out of tolerance,
2 usage/IO error, 3 only missing metrics/rows

bisect compares two state-digest streams (window-level `.digest.jsonl` or
op-level `.opdigest.jsonl`) and reports the first diverging record and the
first state component inside it. Exit 0 when the streams agree, 1 on a
divergence, 3 when one stream is a strict prefix of the other

bench-diff prints the bench-history trajectory across the given snapshot
files (oldest first) and exits 1 if the newest step median regresses past
--gate-rel of the previous one, or if any recorded profiling/digest
overhead exceeds --max-overhead-pct";

/// The first divergence between two aligned digest streams: record index,
/// window, op (for op-level streams), diverging component, both hashes.
#[derive(Debug, PartialEq)]
struct Divergence {
    record: usize,
    window: f64,
    op: Option<f64>,
    component: String,
    a: String,
    b: String,
}

/// The state components of one digest row, in divergence-scan order:
/// per-core digests first (numerically sorted), then the shared-side
/// components in the order `DigestRecord::components` emits them.
fn digest_components(row: &BTreeMap<String, FlatValue>) -> Vec<(String, String)> {
    let mut cores: Vec<(usize, &String)> = row
        .keys()
        .filter_map(|k| {
            k.strip_prefix("core")
                .and_then(|n| n.parse().ok())
                .map(|i| (i, k))
        })
        .collect();
    cores.sort();
    let mut out: Vec<(String, String)> = Vec::with_capacity(cores.len() + 7);
    let get =
        |k: &str| -> Option<String> { row.get(k).and_then(|v| v.as_str().map(str::to_owned)) };
    for (_, k) in cores {
        if let Some(v) = get(k) {
            out.push((k.clone(), v));
        }
    }
    for k in [
        "tlb",
        "cache",
        "wb_fifos",
        "dram",
        "scheme",
        "compression",
        "telemetry",
    ] {
        if let Some(v) = get(k) {
            out.push((k.to_owned(), v));
        }
    }
    out
}

/// Scans two digest streams in lockstep for the first diverging record.
/// Rows must align by identity (`window`/`op`); misaligned streams are a
/// usage error, not a divergence.
fn first_stream_divergence(
    rows_a: &[BTreeMap<String, FlatValue>],
    rows_b: &[BTreeMap<String, FlatValue>],
) -> Result<Option<Divergence>, String> {
    let num = |row: &BTreeMap<String, FlatValue>, k: &str| row.get(k).and_then(|v| v.as_f64());
    for (i, (ra, rb)) in rows_a.iter().zip(rows_b).enumerate() {
        let (wa, wb) = (num(ra, "window"), num(rb, "window"));
        let (oa, ob) = (num(ra, "op"), num(rb, "op"));
        if wa != wb || oa != ob {
            return Err(format!(
                "record {i}: streams are misaligned (a: window {wa:?} op {oa:?}, \
                 b: window {wb:?} op {ob:?}); compare runs of the same configuration"
            ));
        }
        let (ca, cb) = (digest_components(ra), digest_components(rb));
        if ca.iter().map(|(k, _)| k).ne(cb.iter().map(|(k, _)| k)) {
            return Err(format!(
                "record {i}: streams carry different components (core-count mismatch?)"
            ));
        }
        if let Some(((name, va), (_, vb))) =
            ca.into_iter().zip(cb).find(|((_, va), (_, vb))| va != vb)
        {
            return Ok(Some(Divergence {
                record: i,
                window: wa.unwrap_or(-1.0),
                op: oa,
                component: name,
                a: va,
                b: vb,
            }));
        }
    }
    Ok(None)
}

/// `dylect-stats bisect`: loads two digest streams and reports the first
/// diverging record + component.
fn bisect(path_a: &str, path_b: &str) -> Result<u8, String> {
    let jsonl_rows = |path: &str| -> Result<Vec<BTreeMap<String, FlatValue>>, String> {
        match load(path)? {
            Parsed::Jsonl(rows) => Ok(rows
                .into_iter()
                .filter(|r| r.contains_key("digest"))
                .collect()),
            Parsed::Report(_) => Err(format!("{path}: not a digest stream (.jsonl expected)")),
        }
    };
    let rows_a = jsonl_rows(path_a)?;
    let rows_b = jsonl_rows(path_b)?;
    if rows_a.is_empty() || rows_b.is_empty() {
        return Err(format!(
            "no digest records ({path_a}: {}, {path_b}: {}); run with DYLECT_DIGEST=1",
            rows_a.len(),
            rows_b.len()
        ));
    }
    match first_stream_divergence(&rows_a, &rows_b)? {
        Some(d) => {
            let at = match d.op {
                Some(op) => format!("op {op:.0} (window {:.0})", d.window),
                None => format!("window {:.0}", d.window),
            };
            outln!(
                "first divergence: record {} at {at}, component `{}` ({} vs {})",
                d.record,
                d.component,
                d.a,
                d.b
            );
            let hint = match d.op {
                Some(_) => "this is the exact first diverging operation",
                None => {
                    "re-run both configurations with op-level digests over this window \
                     (fig_divergence --bisect) to name the exact op"
                }
            };
            outln!("{hint}");
            Ok(1)
        }
        None if rows_a.len() != rows_b.len() => {
            outln!(
                "streams agree on all {} shared records, but lengths differ \
                 ({} vs {})",
                rows_a.len().min(rows_b.len()),
                rows_a.len(),
                rows_b.len()
            );
            Ok(3)
        }
        None => {
            outln!("streams are identical across {} records", rows_a.len());
            Ok(0)
        }
    }
}

/// One parsed `BENCH_*.json` snapshot in the bench-history trajectory.
struct BenchStep {
    file: String,
    bench: String,
    median_ns: Option<f64>,
    overhead_pct: Option<f64>,
    git_rev: String,
}

/// The step median of a snapshot: the plain median when present, else the
/// baseline median recorded by overhead-style snapshots (shadow,
/// selfprofile), which is the same underlying `system_step_1000_ops`
/// measurement.
const MEDIAN_KEYS: [&str; 2] = ["median_ns_per_iter", "baseline_median_ns_per_iter"];
const OVERHEAD_KEYS: [&str; 3] = [
    "prof_overhead_pct",
    "shadow_overhead_pct",
    "digest_overhead_pct",
];

fn load_bench_step(path: &str) -> Result<BenchStep, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let map = dylect_telemetry::export::parse_flat_object(&text)
        .ok_or_else(|| format!("{path}: not a flat JSON object"))?;
    let num = |key: &str| map.get(key).and_then(|v| v.as_f64());
    let median_ns = MEDIAN_KEYS.iter().find_map(|k| num(k));
    let overhead_pct = OVERHEAD_KEYS.iter().find_map(|k| num(k));
    Ok(BenchStep {
        file: path.to_owned(),
        bench: map
            .get("bench")
            .and_then(|v| v.as_str().map(str::to_owned))
            .unwrap_or_else(|| "?".to_owned()),
        median_ns,
        overhead_pct,
        git_rev: map
            .get("git_rev")
            .and_then(|v| v.as_str().map(str::to_owned))
            .unwrap_or_else(|| "?".to_owned()),
    })
}

/// Renders the trajectory table over committed `BENCH_*.json` snapshots
/// (CLI order = history order) and applies the regression gates. Exit 0
/// when every gate holds, 1 on a regression.
fn bench_diff(
    files: &[String],
    gate_rel: Option<f64>,
    max_overhead: Option<f64>,
) -> Result<u8, String> {
    let steps: Vec<BenchStep> = files
        .iter()
        .map(|f| load_bench_step(f))
        .collect::<Result<_, _>>()?;
    outln!(
        "{:<28} {:<26} {:>14} {:>10} {:>9} {:<8}",
        "file",
        "bench",
        "median_ns",
        "delta_pct",
        "overhead",
        "git_rev"
    );
    let mut prev_median: Option<f64> = None;
    for s in &steps {
        let median = match s.median_ns {
            Some(m) => format!("{m:.1}"),
            None => "-".to_owned(),
        };
        let delta = match (prev_median, s.median_ns) {
            (Some(p), Some(m)) if p > 0.0 => format!("{:+.1}", 100.0 * (m - p) / p),
            _ => "-".to_owned(),
        };
        let overhead = match s.overhead_pct {
            Some(o) => format!("{o:.2}"),
            None => "-".to_owned(),
        };
        outln!(
            "{:<28} {:<26} {:>14} {:>10} {:>9} {:<8}",
            s.file,
            s.bench,
            median,
            delta,
            overhead,
            s.git_rev
        );
        if s.median_ns.is_some() {
            prev_median = s.median_ns;
        }
    }
    let mut failed = false;
    if let Some(rel) = gate_rel {
        let medians: Vec<(&str, f64)> = steps
            .iter()
            .filter_map(|s| s.median_ns.map(|m| (s.file.as_str(), m)))
            .collect();
        if let [.., (prev_file, prev), (last_file, last)] = medians.as_slice() {
            if *last > prev * (1.0 + rel) {
                outln!(
                    "GATE: {last_file} median {last:.1} ns regresses past {prev_file} \
                     ({prev:.1} ns) by more than {:.1}%",
                    rel * 100.0
                );
                failed = true;
            } else {
                outln!(
                    "gate ok: {last_file} within {:.1}% of {prev_file}",
                    rel * 100.0
                );
            }
        }
    }
    if let Some(max) = max_overhead {
        // Profiling and digest overheads are budgeted; shadow overhead is
        // expected to be large and is reported, not gated.
        for s in &steps {
            let gated = s.bench.contains("prof") || s.bench.contains("digest");
            if let (true, Some(o)) = (gated, s.overhead_pct) {
                if o > max {
                    outln!(
                        "GATE: {} recorded overhead {o:.2}% exceeds {max:.2}%",
                        s.file
                    );
                    failed = true;
                } else {
                    outln!(
                        "overhead ok: {} recorded overhead {o:.2}% <= {max:.2}%",
                        s.file
                    );
                }
            }
        }
    }
    Ok(if failed { 1 } else { 0 })
}

fn run() -> Result<u8, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("dump") | Some("summary") if args.len() == 2 => {
            let parsed = load(&args[1])?;
            if args[0] == "dump" {
                dump(&parsed);
            } else {
                summary(&parsed);
            }
            Ok(0)
        }
        Some("bisect") if args.len() == 3 => bisect(&args[1], &args[2]),
        Some("bench-diff") if args.len() >= 2 => {
            let mut files = Vec::new();
            let mut gate_rel = None;
            let mut max_overhead = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    flag @ ("--gate-rel" | "--max-overhead-pct") => {
                        let value = args
                            .get(i + 1)
                            .ok_or_else(|| format!("{flag} needs a value"))?
                            .parse::<f64>()
                            .map_err(|e| format!("{flag}: {e}"))?;
                        if flag == "--gate-rel" {
                            gate_rel = Some(value);
                        } else {
                            max_overhead = Some(value);
                        }
                        i += 2;
                    }
                    other if other.starts_with("--") => {
                        return Err(format!("unknown flag {other}\n{USAGE}"));
                    }
                    file => {
                        files.push(file.to_owned());
                        i += 1;
                    }
                }
            }
            if files.is_empty() {
                return Err(format!("bench-diff needs at least one file\n{USAGE}"));
            }
            bench_diff(&files, gate_rel, max_overhead)
        }
        Some("diff") if args.len() >= 3 => {
            let mut tol = Tolerance::default();
            let mut i = 3;
            while i < args.len() {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{} needs a value", args[i]))?
                    .parse::<f64>()
                    .map_err(|e| format!("{}: {e}", args[i]))?;
                match args[i].as_str() {
                    "--abs-tol" => tol.abs = value,
                    "--rel-tol" => tol.rel = value,
                    other => return Err(format!("unknown flag {other}\n{USAGE}")),
                }
                i += 2;
            }
            let a = load(&args[1])?;
            let b = load(&args[2])?;
            let diffs = diff(&a, &b, &tol);
            if diffs.is_empty() {
                outln!(
                    "identical within tolerance (abs {}, rel {})",
                    tol.abs,
                    tol.rel
                );
                Ok(0)
            } else {
                for d in &diffs {
                    outln!("{}", d.msg);
                }
                let missing = diffs.iter().filter(|d| d.missing).count();
                outln!(
                    "{} difference(s) ({missing} missing metric(s))",
                    diffs.len()
                );
                Ok(outcome(&diffs))
            }
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dylect_telemetry::diff::row_label;
    use dylect_telemetry::export::parse_flat_object;

    #[test]
    fn shadow_rows_render_and_label() {
        let rows = vec![
            parse_flat_object(
                r#"{"shadow":"miss_class","kind":"total","real_hits":10,"real_misses":4,"compulsory":2,"capacity":1,"conflict":1}"#,
            )
            .unwrap(),
            parse_flat_object(
                r#"{"shadow":"config","config":"x2_size","capacity_bytes":262144,"ways":8,"hits":12,"lookups":14,"hit_rate":0.857}"#,
            )
            .unwrap(),
            parse_flat_object(
                r#"{"page_life":"level","level":"ml0","dwell_ops":500,"resident_pages":3,"entries":7}"#,
            )
            .unwrap(),
            parse_flat_object(
                r#"{"page_life":"top","rank":0,"mc":0,"page":42,"trips":6,"pingpong_events":2,"promotions":7,"demotions":6}"#,
            )
            .unwrap(),
        ];
        assert!(shadow_summary(&rows), "shadow rows must render");
        let label = row_label(&rows[0], 0);
        assert!(label.contains("shadow=miss_class"), "{label}");
        assert!(label.contains("kind=total"), "{label}");
        let label = row_label(&rows[1], 1);
        assert!(label.contains("config=x2_size"), "{label}");
        let label = row_label(&rows[3], 3);
        assert!(label.contains("page_life=top"), "{label}");
        assert!(label.contains("rank=0"), "{label}");
        // Latency rows are untouched by the shadow renderer.
        let latency =
            vec![parse_flat_object(r#"{"hist":"latency","scope":"mem","count":1}"#).unwrap()];
        assert!(!shadow_summary(&latency));
    }

    #[test]
    fn prof_rows_render_and_other_rows_do_not() {
        let rows = vec![
            parse_flat_object(
                r#"{"prof_phase":"batch_step","kind":"exact","ns":1000,"calls":4,"est_ns":1000,"est_calls":4}"#,
            )
            .unwrap(),
            parse_flat_object(
                r#"{"prof_phase":"dram_access","kind":"sampled","ns":50,"calls":2,"est_ns":1600,"est_calls":64}"#,
            )
            .unwrap(),
            parse_flat_object(r#"{"prof_worker":"drain","wid":0,"busy_ns":700,"items":9}"#)
                .unwrap(),
            parse_flat_object(
                r#"{"prof_summary":"spans","retained":5,"dropped":0,"wall_ns":2000.0,"measure_ops":1000.0}"#,
            )
            .unwrap(),
        ];
        assert!(prof_summary(&rows), "prof rows must render");
        let latency =
            vec![parse_flat_object(r#"{"hist":"latency","scope":"mem","count":1}"#).unwrap()];
        assert!(!prof_summary(&latency));
    }

    fn digest_row(window: u64, op: Option<u64>, cache: &str) -> BTreeMap<String, FlatValue> {
        let kind = if op.is_some() { "op" } else { "window" };
        let op_field = op.map_or(String::new(), |o| format!("\"op\": {o}, "));
        parse_flat_object(&format!(
            "{{\"digest\": \"{kind}\", \"window\": {window}, {op_field}\
             \"ops_retired\": {}, \"core0\": \"00000000000000aa\", \
             \"tlb\": \"00000000000000bb\", \"cache\": \"{cache}\", \
             \"wb_fifos\": \"00000000000000cc\", \"dram\": \"00000000000000dd\", \
             \"scheme\": \"00000000000000ee\", \"compression\": \"00000000000000ff\", \
             \"telemetry\": \"0000000000000000\"}}",
            op.unwrap_or(window * 4096),
        ))
        .unwrap()
    }

    #[test]
    fn bisect_scan_names_the_first_diverging_record_and_component() {
        let a = vec![
            digest_row(1, None, "1111111111111111"),
            digest_row(2, None, "2222222222222222"),
        ];
        let same = first_stream_divergence(&a, &a).unwrap();
        assert_eq!(same, None, "identical streams never diverge");

        let mut b = a.clone();
        b[1].insert(
            "cache".to_owned(),
            parse_flat_object(r#"{"cache": "deaddeaddeaddead"}"#)
                .unwrap()
                .remove("cache")
                .unwrap(),
        );
        let d = first_stream_divergence(&a, &b).unwrap().expect("diverges");
        assert_eq!(d.record, 1);
        assert_eq!(d.window, 2.0);
        assert_eq!(d.op, None);
        assert_eq!(d.component, "cache");
        assert_eq!(d.a, "2222222222222222");
        assert_eq!(d.b, "deaddeaddeaddead");

        // Op-level rows surface the exact op index.
        let oa = vec![digest_row(1, Some(6399), "1111111111111111")];
        let mut ob = oa.clone();
        ob[0].insert(
            "cache".to_owned(),
            parse_flat_object(r#"{"cache": "deaddeaddeaddead"}"#)
                .unwrap()
                .remove("cache")
                .unwrap(),
        );
        let d = first_stream_divergence(&oa, &ob)
            .unwrap()
            .expect("diverges");
        assert_eq!(d.op, Some(6399.0));
        assert_eq!(d.component, "cache");

        // Misaligned identities are an error, not a divergence.
        let shifted = vec![digest_row(3, None, "1111111111111111")];
        assert!(first_stream_divergence(&a, &shifted).is_err());
    }

    #[test]
    fn bench_diff_gates_a_regression_and_passes_within_tolerance() {
        let dir =
            std::env::temp_dir().join(format!("dylect-benchdiff-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, body: &str| -> String {
            let path = dir.join(name);
            std::fs::write(&path, body).unwrap();
            path.to_string_lossy().into_owned()
        };
        let a = write(
            "BENCH_a.json",
            "{\n  \"bench\": \"system_step_1000_ops\",\n  \"median_ns_per_iter\": 100.0,\n  \"git_rev\": \"aaa\"\n}\n",
        );
        let ok = write(
            "BENCH_b.json",
            "{\n  \"bench\": \"system_step_1000_ops\",\n  \"median_ns_per_iter\": 104.0,\n  \"git_rev\": \"bbb\"\n}\n",
        );
        let bad = write(
            "BENCH_c.json",
            "{\n  \"bench\": \"system_step_1000_prof\",\n  \"baseline_median_ns_per_iter\": 140.0,\n  \"prof_overhead_pct\": 3.5,\n  \"git_rev\": \"ccc\"\n}\n",
        );
        let steps = [a.clone(), ok.clone()];
        assert_eq!(
            bench_diff(&steps, Some(0.10), None),
            Ok(0),
            "4% is within 10%"
        );
        let steps = [a.clone(), ok.clone(), bad.clone()];
        assert_eq!(
            bench_diff(&steps, Some(0.10), None),
            Ok(1),
            "140 vs 104 regresses past 10%"
        );
        assert_eq!(
            bench_diff(std::slice::from_ref(&bad), None, Some(2.0)),
            Ok(1),
            "3.5% profiling overhead exceeds the 2% budget"
        );
        assert_eq!(bench_diff(&[bad], None, Some(5.0)), Ok(0));
        assert!(bench_diff(&["/nonexistent.json".to_owned()], None, None).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
