//! `dylect-stats` — inspect and compare simulator telemetry exports.
//!
//! ```text
//! dylect-stats dump <file>
//! dylect-stats summary <file>
//! dylect-stats diff <a> <b> [--abs-tol X] [--rel-tol Y]
//! ```
//!
//! Two file kinds are understood:
//!
//! - `*.jsonl` telemetry exports (`<stem>.series.jsonl`,
//!   `<stem>.events.jsonl`, `<stem>.latency.jsonl`) — flat JSON objects,
//!   one per line;
//! - `*.report` run-report cache records (the `KvWriter` format used under
//!   `results/cache/`), where floats are stored as exact bit patterns.
//!
//! `summary` renders series files as per-series aggregates and latency
//! files as percentile (p50/p95/p99/p999) and component-total tables.
//!
//! `diff` compares two files of the same kind; numeric fields may differ by
//! at most the configured tolerances (`--abs-tol`, `--rel-tol`, both
//! defaulting to 0 = exact). Exit codes distinguish the failure modes so CI
//! gates can react differently to drift vs. schema changes: 0 when
//! identical within tolerance, 1 when a shared metric is out of tolerance,
//! 2 on usage or I/O errors, 3 when the only differences are missing
//! metrics/rows (present on one side only).

use std::collections::BTreeMap;
use std::io::Write as _;
use std::process::ExitCode;

use dylect_telemetry::diff::{diff, fmt_value, load, outcome, Parsed, Tolerance};
use dylect_telemetry::export::FlatValue;

/// Writes one line to stdout, dying quietly with the conventional SIGPIPE
/// status when the downstream reader has gone away (`dylect-stats dump … |
/// head` must not panic).
fn outln_impl(args: std::fmt::Arguments) {
    let mut out = std::io::stdout().lock();
    if out
        .write_fmt(args)
        .and_then(|()| out.write_all(b"\n"))
        .is_err()
    {
        std::process::exit(141);
    }
}

macro_rules! outln {
    ($($arg:tt)*) => { outln_impl(format_args!($($arg)*)) };
}

fn dump(parsed: &Parsed) {
    match parsed {
        Parsed::Jsonl(rows) => {
            for row in rows {
                let fields: Vec<String> = row
                    .iter()
                    .map(|(k, v)| format!("{k}={}", fmt_value(v)))
                    .collect();
                outln!("{}", fields.join(" "));
            }
        }
        Parsed::Report(map) => {
            for (k, v) in map {
                outln!("{k} = {v}");
            }
        }
    }
}

/// Renders latency-export rows (`"hist":"latency"` histograms and
/// `"hist":"components"` totals); returns whether anything was printed.
fn latency_summary(rows: &[BTreeMap<String, FlatValue>]) -> bool {
    let get_str = |row: &BTreeMap<String, FlatValue>, key: &str| -> String {
        row.get(key)
            .and_then(|v| v.as_str().map(str::to_owned))
            .unwrap_or_else(|| "?".to_owned())
    };
    let get_num = |row: &BTreeMap<String, FlatValue>, key: &str| -> f64 {
        row.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
    };
    let hists: Vec<_> = rows
        .iter()
        .filter(|r| r.get("hist").and_then(|v| v.as_str()) == Some("latency"))
        .collect();
    let mut printed = false;
    if !hists.is_empty() {
        outln!(
            "{:<5} {:<10} {:<5} {:<14} {:>9} {:>11} {:>11} {:>11} {:>11} {:>11}",
            "scope",
            "class",
            "level",
            "path",
            "count",
            "mean_ns",
            "p50_ns",
            "p95_ns",
            "p99_ns",
            "p999_ns"
        );
        for row in &hists {
            outln!(
                "{:<5} {:<10} {:<5} {:<14} {:>9} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>11.1}",
                get_str(row, "scope"),
                get_str(row, "class"),
                get_str(row, "level"),
                get_str(row, "path"),
                get_num(row, "count"),
                get_num(row, "mean_ps") / 1000.0,
                get_num(row, "p50_ps") / 1000.0,
                get_num(row, "p95_ps") / 1000.0,
                get_num(row, "p99_ps") / 1000.0,
                get_num(row, "p999_ps") / 1000.0,
            );
        }
        printed = true;
    }
    let comps: Vec<_> = rows
        .iter()
        .filter(|r| r.get("hist").and_then(|v| v.as_str()) == Some("components"))
        .collect();
    if !comps.is_empty() {
        if printed {
            outln!("");
        }
        outln!(
            "{:<5} {:<14} {:>14} {:>10}",
            "scope",
            "component",
            "total_us",
            "records"
        );
        for row in &comps {
            outln!(
                "{:<5} {:<14} {:>14.3} {:>10}",
                get_str(row, "scope"),
                get_str(row, "component"),
                get_num(row, "total_ps") / 1e6,
                get_num(row, "records"),
            );
        }
        printed = true;
    }
    if let Some(spans) = rows
        .iter()
        .find(|r| r.get("hist").and_then(|v| v.as_str()) == Some("spans"))
    {
        outln!(
            "spans: {} retained, {} dropped",
            get_num(spans, "retained"),
            get_num(spans, "dropped")
        );
        printed = true;
    }
    printed
}

/// Renders shadow-export rows (`"shadow"` miss-class/config tables and
/// `"page_life"` lifetime/ping-pong/residency tables); returns whether
/// anything was printed.
fn shadow_summary(rows: &[BTreeMap<String, FlatValue>]) -> bool {
    let get_str = |row: &BTreeMap<String, FlatValue>, key: &str| -> String {
        row.get(key)
            .and_then(|v| v.as_str().map(str::to_owned))
            .unwrap_or_else(|| "?".to_owned())
    };
    let get_num = |row: &BTreeMap<String, FlatValue>, key: &str| -> f64 {
        row.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
    };
    let of_kind = |disc: &str, kind: &str| -> Vec<&BTreeMap<String, FlatValue>> {
        rows.iter()
            .filter(|r| r.get(disc).and_then(|v| v.as_str()) == Some(kind))
            .collect()
    };
    let mut printed = false;
    let classes = of_kind("shadow", "miss_class");
    if !classes.is_empty() {
        outln!(
            "{:<12} {:>10} {:>11} {:>11} {:>10} {:>10}",
            "cte_kind",
            "hits",
            "misses",
            "compulsory",
            "capacity",
            "conflict"
        );
        for row in &classes {
            outln!(
                "{:<12} {:>10} {:>11} {:>11} {:>10} {:>10}",
                get_str(row, "kind"),
                get_num(row, "real_hits"),
                get_num(row, "real_misses"),
                get_num(row, "compulsory"),
                get_num(row, "capacity"),
                get_num(row, "conflict"),
            );
        }
        printed = true;
    }
    let configs = of_kind("shadow", "config");
    if !configs.is_empty() {
        if printed {
            outln!("");
        }
        outln!(
            "{:<12} {:>12} {:>5} {:>11} {:>11} {:>9}",
            "config",
            "capacity_kib",
            "ways",
            "hits",
            "lookups",
            "hit_rate"
        );
        for row in &configs {
            let cap = get_num(row, "capacity_bytes");
            let cap = if cap == 0.0 {
                "inf".to_owned()
            } else {
                format!("{:.0}", cap / 1024.0)
            };
            let ways = get_num(row, "ways");
            let ways = if ways == 0.0 {
                "full".to_owned()
            } else {
                format!("{ways:.0}")
            };
            outln!(
                "{:<12} {:>12} {:>5} {:>11} {:>11} {:>9.4}",
                get_str(row, "config"),
                cap,
                ways,
                get_num(row, "hits"),
                get_num(row, "lookups"),
                get_num(row, "hit_rate"),
            );
        }
        printed = true;
    }
    let levels = of_kind("page_life", "level");
    if !levels.is_empty() {
        if printed {
            outln!("");
        }
        outln!(
            "{:<6} {:>14} {:>15} {:>10}",
            "level",
            "dwell_ops",
            "resident_pages",
            "entries"
        );
        for row in &levels {
            outln!(
                "{:<6} {:>14} {:>15} {:>10}",
                get_str(row, "level"),
                get_num(row, "dwell_ops"),
                get_num(row, "resident_pages"),
                get_num(row, "entries"),
            );
        }
        printed = true;
    }
    if let Some(pp) = of_kind("page_life", "pingpong").first() {
        outln!(
            "pages: {} tracked, {} ping-ponging",
            get_num(pp, "pages_tracked"),
            get_num(pp, "pingpong_pages")
        );
        printed = true;
    }
    let top = of_kind("page_life", "top");
    if !top.is_empty() {
        outln!(
            "{:<5} {:>4} {:>12} {:>7} {:>14} {:>11} {:>10}",
            "rank",
            "mc",
            "page",
            "trips",
            "pingpong_evts",
            "promotions",
            "demotions"
        );
        for row in &top {
            outln!(
                "{:<5} {:>4} {:>12} {:>7} {:>14} {:>11} {:>10}",
                get_num(row, "rank"),
                get_num(row, "mc"),
                get_num(row, "page"),
                get_num(row, "trips"),
                get_num(row, "pingpong_events"),
                get_num(row, "promotions"),
                get_num(row, "demotions"),
            );
        }
        printed = true;
    }
    let residency = of_kind("page_life", "residency");
    if !residency.is_empty() {
        let buckets: Vec<String> = residency
            .iter()
            .map(|r| format!("{}:{}", get_num(r, "peak"), get_num(r, "groups")))
            .collect();
        outln!("ml0 residency peaks (peak:groups): {}", buckets.join(" "));
        printed = true;
    }
    printed
}

fn summary(parsed: &Parsed) {
    match parsed {
        Parsed::Jsonl(rows) => {
            if shadow_summary(rows) {
                return;
            }
            if latency_summary(rows) {
                return;
            }
            // Group series bins by name; fall back to event kinds.
            let mut groups: BTreeMap<String, (u64, u64, f64, f64, f64)> = BTreeMap::new();
            for row in rows {
                let Some(name) = row.get("series").and_then(|v| v.as_str()) else {
                    continue;
                };
                let count = row.get("count").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
                let min = row.get("min").and_then(|v| v.as_f64()).unwrap_or(0.0);
                let max = row.get("max").and_then(|v| v.as_f64()).unwrap_or(0.0);
                let mean = row.get("mean").and_then(|v| v.as_f64()).unwrap_or(0.0);
                let e = groups
                    .entry(name.to_string())
                    .or_insert((0, 0, f64::MAX, f64::MIN, 0.0));
                e.0 += 1;
                e.1 += count;
                e.2 = e.2.min(min);
                e.3 = e.3.max(max);
                e.4 = mean; // last bin's mean wins: the settled value
            }
            if groups.is_empty() {
                outln!("{} rows (no series records)", rows.len());
                return;
            }
            outln!(
                "{:<26} {:>6} {:>9} {:>12} {:>12} {:>12}",
                "series",
                "bins",
                "samples",
                "min",
                "max",
                "last_mean"
            );
            for (name, (bins, samples, min, max, last)) in &groups {
                outln!("{name:<26} {bins:>6} {samples:>9} {min:>12.4} {max:>12.4} {last:>12.4}");
            }
        }
        Parsed::Report(map) => {
            outln!("report record with {} keys", map.len());
            for (k, v) in map {
                outln!("{k} = {v}");
            }
        }
    }
}

const USAGE: &str = "usage:
  dylect-stats dump <file>
  dylect-stats summary <file>
  dylect-stats diff <a> <b> [--abs-tol X] [--rel-tol Y]

diff exit codes: 0 identical within tolerance, 1 metric out of tolerance,
2 usage/IO error, 3 only missing metrics/rows";

fn run() -> Result<u8, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("dump") | Some("summary") if args.len() == 2 => {
            let parsed = load(&args[1])?;
            if args[0] == "dump" {
                dump(&parsed);
            } else {
                summary(&parsed);
            }
            Ok(0)
        }
        Some("diff") if args.len() >= 3 => {
            let mut tol = Tolerance::default();
            let mut i = 3;
            while i < args.len() {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{} needs a value", args[i]))?
                    .parse::<f64>()
                    .map_err(|e| format!("{}: {e}", args[i]))?;
                match args[i].as_str() {
                    "--abs-tol" => tol.abs = value,
                    "--rel-tol" => tol.rel = value,
                    other => return Err(format!("unknown flag {other}\n{USAGE}")),
                }
                i += 2;
            }
            let a = load(&args[1])?;
            let b = load(&args[2])?;
            let diffs = diff(&a, &b, &tol);
            if diffs.is_empty() {
                outln!(
                    "identical within tolerance (abs {}, rel {})",
                    tol.abs,
                    tol.rel
                );
                Ok(0)
            } else {
                for d in &diffs {
                    outln!("{}", d.msg);
                }
                let missing = diffs.iter().filter(|d| d.missing).count();
                outln!(
                    "{} difference(s) ({missing} missing metric(s))",
                    diffs.len()
                );
                Ok(outcome(&diffs))
            }
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dylect_telemetry::diff::row_label;
    use dylect_telemetry::export::parse_flat_object;

    #[test]
    fn shadow_rows_render_and_label() {
        let rows = vec![
            parse_flat_object(
                r#"{"shadow":"miss_class","kind":"total","real_hits":10,"real_misses":4,"compulsory":2,"capacity":1,"conflict":1}"#,
            )
            .unwrap(),
            parse_flat_object(
                r#"{"shadow":"config","config":"x2_size","capacity_bytes":262144,"ways":8,"hits":12,"lookups":14,"hit_rate":0.857}"#,
            )
            .unwrap(),
            parse_flat_object(
                r#"{"page_life":"level","level":"ml0","dwell_ops":500,"resident_pages":3,"entries":7}"#,
            )
            .unwrap(),
            parse_flat_object(
                r#"{"page_life":"top","rank":0,"mc":0,"page":42,"trips":6,"pingpong_events":2,"promotions":7,"demotions":6}"#,
            )
            .unwrap(),
        ];
        assert!(shadow_summary(&rows), "shadow rows must render");
        let label = row_label(&rows[0], 0);
        assert!(label.contains("shadow=miss_class"), "{label}");
        assert!(label.contains("kind=total"), "{label}");
        let label = row_label(&rows[1], 1);
        assert!(label.contains("config=x2_size"), "{label}");
        let label = row_label(&rows[3], 3);
        assert!(label.contains("page_life=top"), "{label}");
        assert!(label.contains("rank=0"), "{label}");
        // Latency rows are untouched by the shadow renderer.
        let latency =
            vec![parse_flat_object(r#"{"hist":"latency","scope":"mem","count":1}"#).unwrap()];
        assert!(!shadow_summary(&latency));
    }
}
