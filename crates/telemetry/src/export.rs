//! Export formats: series JSONL, event JSONL, and Chrome trace-event JSON.
//!
//! Everything is hand-rolled — the workspace is hermetic (no serde). Floats
//! are written with Rust's shortest round-trip formatting (`{:?}`), so a
//! value survives a write/parse cycle bit-exactly.
//!
//! Four files per export, sharing a stem:
//!
//! - `<stem>.series.jsonl` — one JSON object per series bin (read back by
//!   `dylect-stats`),
//! - `<stem>.events.jsonl` — one JSON object per journal entry,
//! - `<stem>.latency.jsonl` — one JSON object per latency histogram plus
//!   per-scope component-total lines (histogram buckets ride in an encoded
//!   `"idx:count,…"` string so lines stay flat),
//! - `<stem>.trace.json` — Chrome trace-event format (instant MC events
//!   plus begin/end pairs for sampled request spans); load it in
//!   `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! The JSONL records are *flat* objects (string keys, number or string
//! values, no nesting), which is what [`parse_flat_object`] supports.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use dylect_sim_core::probe::{AccessComponent, AccessScope, CteBlockKind, SpanRecord};
use dylect_sim_core::stats::LogHistogram;

use crate::attribution::Attribution;
use crate::journal::EventJournal;
use crate::provenance::Provenance;
use crate::sampler::Sampler;
use crate::shadow::{MissClasses, ShadowState};

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` so it parses back to the same bits (`{:?}` is Rust's
/// shortest round-trip representation; non-finite values have no JSON
/// spelling and become `null`).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Renders the sampler's series as JSONL, one object per bin.
pub fn series_jsonl(sampler: &Sampler) -> String {
    let mut out = String::new();
    for series in sampler.series() {
        for b in series.bins() {
            let _ = writeln!(
                out,
                "{{\"series\":\"{}\",\"x_start\":{},\"x_end\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}}}",
                json_escape(series.name()),
                b.x_start,
                b.x_end,
                b.count,
                json_f64(b.sum),
                json_f64(b.min),
                json_f64(b.max),
                json_f64(b.mean()),
            );
        }
    }
    out
}

/// Renders the journal as JSONL, one object per retained entry, with a
/// trailing per-kind summary line (exact counts even past capacity).
pub fn events_jsonl(journal: &EventJournal) -> String {
    let mut out = String::new();
    for e in journal.entries() {
        let _ = writeln!(
            out,
            "{{\"ts_ps\":{},\"mc\":{},\"event\":\"{}\",\"page\":{}}}",
            e.now.as_ps(),
            e.mc,
            e.event.name(),
            e.page,
        );
    }
    let mut summary = format!(
        "{{\"summary\":\"event_totals\",\"dropped\":{}",
        journal.dropped()
    );
    for event in dylect_sim_core::probe::McEvent::ALL {
        let _ = write!(summary, ",\"{}\":{}", event.name(), journal.count(event));
    }
    summary.push('}');
    out.push_str(&summary);
    out.push('\n');
    out
}

/// Renders one latency histogram's percentiles and buckets as a flat JSONL
/// line. Bucket occupancy is encoded as an `"idx:count,…"` string because
/// the flat-object format has no arrays.
fn latency_line(scope: AccessScope, key2: (&str, &str, &str, &str), hist: &LogHistogram) -> String {
    let (kind, class, level, path) = key2;
    let mut buckets = String::new();
    for (idx, count) in hist.iter() {
        if !buckets.is_empty() {
            buckets.push(',');
        }
        let _ = write!(buckets, "{idx}:{count}");
    }
    format!(
        "{{\"hist\":\"{kind}\",\"scope\":\"{}\",\"class\":\"{class}\",\"level\":\"{level}\",\"path\":\"{path}\",\"count\":{},\"sum_ps\":{},\"mean_ps\":{},\"p50_ps\":{},\"p95_ps\":{},\"p99_ps\":{},\"p999_ps\":{},\"buckets\":\"{buckets}\"}}",
        scope.name(),
        hist.count(),
        hist.sum().as_ps(),
        hist.mean().as_ps(),
        hist.percentile(0.50).as_ps(),
        hist.percentile(0.95).as_ps(),
        hist.percentile(0.99).as_ps(),
        hist.percentile(0.999).as_ps(),
    )
}

/// Renders the attribution layer as JSONL: one `"hist":"latency"` line per
/// (scope, class, level, path) histogram, one `"hist":"components"` line
/// per non-zero per-scope component total, and a trailing span-retention
/// summary.
pub fn latency_jsonl(attribution: &Attribution) -> String {
    let mut out = String::new();
    for ((scope, class, level, path), hist) in attribution.histograms() {
        let line = latency_line(
            *scope,
            ("latency", class.name(), level.name(), path.name()),
            hist,
        );
        out.push_str(&line);
        out.push('\n');
    }
    for scope in AccessScope::ALL {
        let records = attribution.records(scope);
        if records == 0 {
            continue;
        }
        for c in AccessComponent::ALL {
            let total = attribution.component_total(scope, c);
            let _ = writeln!(
                out,
                "{{\"hist\":\"components\",\"scope\":\"{}\",\"component\":\"{}\",\"total_ps\":{},\"records\":{}}}",
                scope.name(),
                c.name(),
                total.as_ps(),
                records,
            );
        }
    }
    let _ = writeln!(
        out,
        "{{\"hist\":\"spans\",\"retained\":{},\"dropped\":{}}}",
        attribution.spans().len(),
        attribution.spans_dropped(),
    );
    out
}

/// Renders the journal and sampled request spans in Chrome trace-event
/// JSON: instant events for discrete MC events (one trace `tid` per memory
/// controller) and begin/end pairs for each span phase; timestamps in
/// microseconds.
pub fn chrome_trace(journal: &EventJournal, spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;
    write_sim_events(&mut out, &mut first, journal, spans);
    out.push_str("\n]}\n");
    out
}

/// The shared simulated-clock event body of [`chrome_trace`] and
/// [`chrome_trace_dual`]: instant events per journal entry, B/E pairs per
/// span, all on `pid` 0.
fn write_sim_events(
    out: &mut String,
    first: &mut bool,
    journal: &EventJournal,
    spans: &[SpanRecord],
) {
    for e in journal.entries() {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        let ts_us = e.now.as_ps() as f64 / 1e6;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"mc\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"page\":{}}}}}",
            e.event.name(),
            json_f64(ts_us),
            e.mc,
            e.page,
        );
    }
    for s in spans {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        let begin_us = s.start.as_ps() as f64 / 1e6;
        let end_us = s.end.as_ps() as f64 / 1e6;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"B\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"id\":{},\"page\":{}}}}}",
            s.phase.name(),
            json_f64(begin_us),
            s.mc,
            s.id,
            s.page,
        );
        out.push_str(",\n");
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"E\",\"ts\":{},\"pid\":0,\"tid\":{}}}",
            s.phase.name(),
            json_f64(end_us),
            s.mc,
        );
    }
}

/// The dual-clock Chrome trace: the same simulated-clock events as
/// [`chrome_trace`] on `pid` 0, plus host wall-clock spans from the
/// self-profiler on `pid` 1 (one trace `tid` per host thread), with
/// process-name metadata so viewers label the two clock domains. The two
/// timelines share the microsecond axis but *not* an origin — simulated
/// time starts at 0, host time at the profiling epoch — which is exactly
/// the point: they are different clocks, rendered side by side.
///
/// Only `fig_selfprofile` emits this file; it is host-nondeterministic by
/// nature and never part of the standard deterministic export set.
pub fn chrome_trace_dual(
    journal: &EventJournal,
    spans: &[SpanRecord],
    host: &dylect_sim_core::prof::ProfReport,
) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"simulated (ps clock)\"}},\n",
    );
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"host (wall clock)\"}}",
    );
    let mut first = false;
    write_sim_events(&mut out, &mut first, journal, spans);
    for s in &host.spans {
        out.push_str(",\n");
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"host\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
            s.phase.name(),
            json_f64(s.start_ns as f64 / 1e3),
            json_f64(s.dur_ns as f64 / 1e3),
            s.tid,
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Renders a self-profiler snapshot as JSONL. Phase rows carry a
/// `"prof_phase"` discriminator (recorded + period-scaled estimates),
/// worker rows `"prof_worker"` (per-worker busy time for pool-utilization
/// tables), and one `"prof_summary"` row records span retention. Extra
/// `meta` pairs (benchmark, scheme, op counts) ride on the summary row so
/// `dylect-stats` can print ns/op.
pub fn prof_jsonl(report: &dylect_sim_core::prof::ProfReport, meta: &[(String, f64)]) -> String {
    let mut out = String::new();
    for p in &report.phases {
        let kind = if p.sampled { "sampled" } else { "exact" };
        let _ = writeln!(
            out,
            "{{\"prof_phase\":\"{}\",\"kind\":\"{kind}\",\"ns\":{},\"calls\":{},\"est_ns\":{},\"est_calls\":{}}}",
            p.phase.name(),
            p.ns,
            p.calls,
            p.est_ns,
            p.est_calls,
        );
    }
    for w in &report.workers {
        let _ = writeln!(
            out,
            "{{\"prof_worker\":\"{}\",\"wid\":{},\"busy_ns\":{},\"items\":{}}}",
            w.kind.name(),
            w.wid,
            w.busy_ns,
            w.items,
        );
    }
    let mut summary = format!(
        "{{\"prof_summary\":\"spans\",\"retained\":{},\"dropped\":{}",
        report.spans.len(),
        report.spans_dropped,
    );
    for (key, value) in meta {
        let _ = write!(summary, ",\"{}\":{}", json_escape(key), json_f64(*value));
    }
    summary.push('}');
    out.push_str(&summary);
    out.push('\n');
    out
}

fn miss_class_line(kind: &str, c: &MissClasses) -> String {
    format!(
        "{{\"shadow\":\"miss_class\",\"kind\":\"{kind}\",\"real_hits\":{},\"real_misses\":{},\"compulsory\":{},\"capacity\":{},\"conflict\":{}}}",
        c.real_hits, c.real_misses, c.compulsory, c.capacity, c.conflict,
    )
}

/// Renders the shadow arrays and provenance tracker as JSONL. Shadow rows
/// carry a `"shadow"` discriminator (`miss_class` per block kind + total,
/// `config` per counterfactual geometry, one `summary`); provenance rows a
/// `"page_life"` discriminator (`level` dwell rows, a `pingpong` summary,
/// `top` ping-pong pages, `residency` histogram buckets). Everything is
/// aggregated and sorted before emission, so two identical runs produce
/// byte-identical files.
pub fn shadow_jsonl(shadow: &ShadowState, prov: &Provenance) -> String {
    let mut out = String::new();
    for kind in CteBlockKind::ALL {
        let line = miss_class_line(kind.name(), &shadow.classes(kind));
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(&miss_class_line("total", &shadow.classes_total()));
    out.push('\n');
    for r in shadow.config_rows() {
        // 0 capacity/ways mean "unbounded" (the infinite and
        // fully-associative shadows).
        let capacity = if r.capacity_bytes == u64::MAX {
            0
        } else {
            r.capacity_bytes
        };
        let _ = writeln!(
            out,
            "{{\"shadow\":\"config\",\"config\":\"{}\",\"capacity_bytes\":{},\"ways\":{},\"hits\":{},\"lookups\":{},\"hit_rate\":{}}}",
            r.label,
            capacity,
            r.ways,
            r.tally.hits,
            r.tally.lookups,
            json_f64(r.tally.hit_rate()),
        );
    }
    let _ = writeln!(
        out,
        "{{\"shadow\":\"summary\",\"touches\":{},\"mcs\":{}}}",
        shadow.touches(),
        shadow.mcs().count(),
    );
    for row in prov.level_rows() {
        let _ = writeln!(
            out,
            "{{\"page_life\":\"level\",\"level\":\"{}\",\"dwell_ops\":{},\"resident_pages\":{},\"entries\":{}}}",
            row.level.name(),
            row.dwell_ops,
            row.resident_pages,
            row.entries,
        );
    }
    let _ = writeln!(
        out,
        "{{\"page_life\":\"pingpong\",\"pages_tracked\":{},\"pingpong_pages\":{}}}",
        prov.pages_tracked(),
        prov.pingpong_pages(),
    );
    for (rank, r) in prov.top_pingpong(16).iter().enumerate() {
        let _ = writeln!(
            out,
            "{{\"page_life\":\"top\",\"rank\":{},\"mc\":{},\"page\":{},\"trips\":{},\"pingpong_events\":{},\"promotions\":{},\"demotions\":{}}}",
            rank, r.mc, r.page, r.trips, r.pingpong_events, r.promotions, r.demotions,
        );
    }
    for (peak, groups) in prov.residency_histogram() {
        let _ = writeln!(
            out,
            "{{\"page_life\":\"residency\",\"peak\":{peak},\"groups\":{groups}}}"
        );
    }
    out
}

/// A value in a flat JSON object.
#[derive(Clone, Debug, PartialEq)]
pub enum FlatValue {
    /// A JSON number (always parsed as `f64`).
    Number(f64),
    /// A JSON string.
    String(String),
}

impl FlatValue {
    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FlatValue::Number(v) => Some(*v),
            FlatValue::String(_) => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FlatValue::Number(_) => None,
            FlatValue::String(s) => Some(s),
        }
    }
}

/// Parses one *flat* JSON object — string keys mapped to number, string,
/// `null`, or boolean values; no nesting, which is all our JSONL emitters
/// produce. Returns `None` on any structural error.
pub fn parse_flat_object(line: &str) -> Option<BTreeMap<String, FlatValue>> {
    let s = line.trim();
    let s = s.strip_prefix('{')?.strip_suffix('}')?;
    let mut map = BTreeMap::new();
    let mut rest = s.trim_start();
    while !rest.is_empty() {
        let (key, after_key) = parse_string(rest)?;
        rest = after_key.trim_start().strip_prefix(':')?.trim_start();
        let (value, after_value) = parse_value(rest)?;
        if let Some(v) = value {
            map.insert(key, v);
        }
        rest = after_value.trim_start();
        match rest.strip_prefix(',') {
            Some(r) => rest = r.trim_start(),
            None => break,
        }
    }
    if rest.is_empty() {
        Some(map)
    } else {
        None
    }
}

/// Parses a leading JSON string literal; returns (content, remainder).
fn parse_string(s: &str) -> Option<(String, &str)> {
    let rest = s.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &rest[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let (j, _) = chars.next()?;
                    let hex = rest.get(j..j + 4)?;
                    let code = u32::from_str_radix(hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                    for _ in 0..3 {
                        chars.next()?;
                    }
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// Parses a leading scalar value; `None` in the first slot means JSON
/// `null` (a key we skip rather than store).
fn parse_value(s: &str) -> Option<(Option<FlatValue>, &str)> {
    if s.starts_with('"') {
        let (v, rest) = parse_string(s)?;
        return Some((Some(FlatValue::String(v)), rest));
    }
    if let Some(rest) = s.strip_prefix("null") {
        return Some((None, rest));
    }
    if let Some(rest) = s.strip_prefix("true") {
        return Some((Some(FlatValue::Number(1.0)), rest));
    }
    if let Some(rest) = s.strip_prefix("false") {
        return Some((Some(FlatValue::Number(0.0)), rest));
    }
    let end = s
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(s.len());
    if end == 0 {
        return None;
    }
    let v: f64 = s[..end].parse().ok()?;
    Some((Some(FlatValue::Number(v)), &s[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dylect_sim_core::probe::McEvent;
    use dylect_sim_core::Time;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn f64_round_trips_through_text() {
        for v in [0.0, 1.5, 0.1 + 0.2, 1.0 / 3.0, 1e-300, -7.25] {
            let text = json_f64(v);
            let back: f64 = text.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn flat_parser_round_trips_emitted_lines() {
        let line = r#"{"series":"cte_hit_rate","x_start":0,"x_end":99,"count":100,"sum":12.5,"min":0.0,"max":1.0,"mean":0.125}"#;
        let obj = parse_flat_object(line).unwrap();
        assert_eq!(obj["series"].as_str(), Some("cte_hit_rate"));
        assert_eq!(obj["count"].as_f64(), Some(100.0));
        assert_eq!(obj["mean"].as_f64(), Some(0.125));
    }

    #[test]
    fn flat_parser_rejects_garbage() {
        assert!(parse_flat_object("not json").is_none());
        assert!(parse_flat_object("{\"a\":}").is_none());
        assert!(parse_flat_object("{\"a\":1} trailing").is_none());
    }

    #[test]
    fn flat_parser_handles_null_and_escapes() {
        let obj = parse_flat_object(r#"{"a":null,"b":"x\"y","c":-1.5e3}"#).unwrap();
        assert!(!obj.contains_key("a"));
        assert_eq!(obj["b"].as_str(), Some("x\"y"));
        assert_eq!(obj["c"].as_f64(), Some(-1500.0));
    }

    #[test]
    fn events_jsonl_lines_parse_back() {
        let mut j = EventJournal::new(4);
        j.record(Time::from_ns(2.5), 1, McEvent::Promotion, 99);
        let text = events_jsonl(&j);
        let mut lines = text.lines();
        let e = parse_flat_object(lines.next().unwrap()).unwrap();
        assert_eq!(e["event"].as_str(), Some("promotion"));
        assert_eq!(e["ts_ps"].as_f64(), Some(2500.0));
        let summary = parse_flat_object(lines.next().unwrap()).unwrap();
        assert_eq!(summary["promotion"].as_f64(), Some(1.0));
        assert_eq!(summary["dropped"].as_f64(), Some(0.0));
    }

    #[test]
    fn chrome_trace_is_structurally_sound() {
        use dylect_sim_core::probe::SpanPhase;
        let mut j = EventJournal::new(4);
        j.record(Time::from_ns(1.0), 0, McEvent::Expansion, 3);
        j.record(Time::from_ns(2.0), 1, McEvent::Compaction, 4);
        let spans = [
            SpanRecord {
                id: 0,
                mc: 1,
                phase: SpanPhase::Request,
                start: Time::from_ns(10.0),
                end: Time::from_ns(90.0),
                page: 7,
            },
            SpanRecord {
                id: 0,
                mc: 1,
                phase: SpanPhase::Dram,
                start: Time::from_ns(40.0),
                end: Time::from_ns(90.0),
                page: 7,
            },
        ];
        let t = chrome_trace(&j, &spans);
        assert!(t.starts_with('{') && t.trim_end().ends_with('}'));
        assert_eq!(t.matches("\"ph\":\"i\"").count(), 2);
        assert_eq!(t.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(t.matches("\"ph\":\"E\"").count(), 2);
        assert!(t.contains("\"name\":\"expansion\""));
        assert!(t.contains("\"name\":\"request\""));
        assert!(t.contains("\"name\":\"dram\""));
        assert!(t.contains("\"traceEvents\""));
    }

    #[test]
    fn latency_jsonl_lines_parse_back() {
        use dylect_sim_core::probe::{
            AccessComponent, AccessRecord, MemLevel, RequestClass, TranslationPath,
        };
        let mut a = Attribution::new(4);
        a.record(&AccessRecord::new(
            AccessScope::Mem,
            RequestClass::Demand,
            MemLevel::Ml0,
            TranslationPath::ShortCteHit,
            Time::ZERO,
            Time::from_ns(100.0),
            &[(AccessComponent::DramService, Time::from_ns(60.0))],
        ));
        let text = latency_jsonl(&a);
        let mut latency_lines = 0;
        for line in text.lines() {
            let obj = parse_flat_object(line).unwrap_or_else(|| panic!("unparsable: {line}"));
            if obj["hist"].as_str() == Some("latency") {
                latency_lines += 1;
                assert_eq!(obj["scope"].as_str(), Some("mem"));
                assert_eq!(obj["class"].as_str(), Some("demand"));
                assert_eq!(obj["level"].as_str(), Some("ml0"));
                assert_eq!(obj["path"].as_str(), Some("short_cte_hit"));
                assert_eq!(obj["count"].as_f64(), Some(1.0));
                assert!(obj["p50_ps"].as_f64().unwrap() >= 100_000.0);
                assert!(obj["buckets"].as_str().unwrap().contains(':'));
            }
        }
        assert_eq!(latency_lines, 1);
        assert!(text.contains("\"hist\":\"components\""));
        assert!(text.contains("\"component\":\"dram_service\",\"total_ps\":60000"));
        assert!(text.contains("\"hist\":\"spans\""));
    }

    #[test]
    fn shadow_jsonl_lines_parse_back() {
        use dylect_memctl::controller::CteCacheGeometry;
        use dylect_sim_core::probe::{CteOp, CteRecord};
        use std::cell::Cell;
        use std::rc::Rc;

        let mut shadow = ShadowState::default();
        shadow.configure_mc(
            0,
            Some(CteCacheGeometry {
                capacity_bytes: 4096,
                ways: 2,
                block_bytes: 64,
                group_size: 3,
                num_groups: 4,
            }),
        );
        shadow.record(
            0,
            &CteRecord {
                kind: CteBlockKind::Unified,
                op: CteOp::Lookup {
                    hit: false,
                    fill_on_miss: true,
                },
                key: 5,
            },
        );
        let clock = Rc::new(Cell::new(0u64));
        let mut prov = Provenance::new(clock.clone(), 2, 100);
        prov.configure_mc(0, None);
        prov.record(0, dylect_sim_core::probe::McEvent::Promotion, 9);
        clock.set(8);
        prov.record(0, dylect_sim_core::probe::McEvent::Demotion, 9);

        let text = shadow_jsonl(&shadow, &prov);
        for line in text.lines() {
            parse_flat_object(line).unwrap_or_else(|| panic!("unparsable: {line}"));
        }
        assert!(text.contains("\"shadow\":\"miss_class\",\"kind\":\"unified\""));
        assert!(text.contains("\"kind\":\"total\""));
        assert!(text.contains("\"config\":\"infinite\",\"capacity_bytes\":0,\"ways\":0"));
        assert!(text.contains("\"shadow\":\"summary\""));
        assert!(text.contains("\"page_life\":\"level\",\"level\":\"ml0\",\"dwell_ops\":8"));
        assert!(text.contains("\"page_life\":\"pingpong\",\"pages_tracked\":1"));
        // Deterministic: re-rendering the same state is byte-identical.
        assert_eq!(text, shadow_jsonl(&shadow, &prov));
    }
}
