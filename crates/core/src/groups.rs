//! DRAM page groups and the short-CTE mapping function (paper Figure 11).
//!
//! A short CTE of an OS page `p` can only name one of `G` adjacent DRAM
//! pages — `p`'s *DRAM page group*. The group's first DRAM page is found by
//! a static hash
//!
//! ```text
//! hash(p) = G * (p mod (M / G))
//! ```
//!
//! where `M` is the number of data DRAM pages and `G` the group size; the
//! multiplication by `G` makes adjacent OS pages map to *disjoint* groups.
//! The complete mapping is `DRAM_page(p) = hash(p) + shortCTE(p)`.
//!
//! With 2-bit short CTEs the group size is 3 (the fourth encoding is the
//! INVALID flag). Because the hash ranges over all of DRAM, ML0 can scale up
//! to the entire memory when pressure is low (paper §IV-B).

use dylect_sim_core::{DramPageId, PageId};

/// The short-CTE mapping for one memory controller.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GroupMap {
    group_size: u64,
    num_groups: u64,
}

impl GroupMap {
    /// Creates the mapping over `data_pages` DRAM pages with groups of
    /// `group_size` pages.
    ///
    /// DRAM pages beyond `group_size * (data_pages / group_size)` belong to
    /// no group and are reachable only through long CTEs — rigid placement
    /// never needs to cover everything, that is what long CTEs are for.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is 0 or exceeds `data_pages`.
    pub fn new(data_pages: u64, group_size: u64) -> Self {
        assert!(group_size > 0, "group size must be positive");
        assert!(group_size <= data_pages, "group larger than memory");
        GroupMap {
            group_size,
            num_groups: data_pages / group_size,
        }
    }

    /// DRAM pages per group (`G`).
    pub fn group_size(&self) -> u64 {
        self.group_size
    }

    /// Number of disjoint groups.
    pub fn num_groups(&self) -> u64 {
        self.num_groups
    }

    /// Bits needed per short CTE (the INVALID flag costs one encoding).
    ///
    /// # Example
    ///
    /// ```
    /// use dylect_core::groups::GroupMap;
    /// assert_eq!(GroupMap::new(300, 3).short_cte_bits(), 2);
    /// assert_eq!(GroupMap::new(300, 7).short_cte_bits(), 3);
    /// ```
    pub fn short_cte_bits(&self) -> u32 {
        u64::BITS - self.group_size.leading_zeros()
    }

    /// The INVALID short-CTE flag value (the maximum encodable number).
    pub fn invalid(&self) -> u8 {
        self.group_size as u8
    }

    /// The static hash: first DRAM page of `p`'s group.
    pub fn hash(&self, page: PageId) -> DramPageId {
        DramPageId::new(self.group_size * (page.index() % self.num_groups))
    }

    /// All DRAM pages in `p`'s group, in slot order.
    pub fn slots(&self, page: PageId) -> impl Iterator<Item = DramPageId> {
        let base = self.hash(page).index();
        (0..self.group_size).map(move |i| DramPageId::new(base + i))
    }

    /// The DRAM page named by `(page, short_cte)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `short_cte` is the INVALID flag or larger.
    pub fn dram_page(&self, page: PageId, short_cte: u8) -> DramPageId {
        debug_assert!(
            (short_cte as u64) < self.group_size,
            "short CTE {short_cte} out of group"
        );
        DramPageId::new(self.hash(page).index() + short_cte as u64)
    }

    /// The slot index of `dram` within `page`'s group, if it is in it.
    pub fn slot_of(&self, page: PageId, dram: DramPageId) -> Option<u8> {
        let base = self.hash(page).index();
        let d = dram.index();
        (d >= base && d < base + self.group_size).then(|| (d - base) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure_11_example() {
        // 12 OS pages, 6 DRAM pages, G=3: hash(7) = 3*(7 % 2) = 3... the
        // paper's tiny example uses hash(7)=2 with different constants; what
        // matters is the structure, which we check below.
        let g = GroupMap::new(6, 3);
        assert_eq!(g.num_groups(), 2);
        // OS page 7: 7 % 2 = 1 -> group starts at DRAM page 3.
        assert_eq!(g.hash(PageId::new(7)), DramPageId::new(3));
        assert_eq!(g.dram_page(PageId::new(7), 0), DramPageId::new(3));
        assert_eq!(g.dram_page(PageId::new(7), 2), DramPageId::new(5));
    }

    #[test]
    fn adjacent_os_pages_use_distinct_groups() {
        let g = GroupMap::new(3000, 3);
        let h0 = g.hash(PageId::new(100));
        let h1 = g.hash(PageId::new(101));
        assert_ne!(h0, h1);
        // Groups are disjoint: starts are multiples of G.
        assert_eq!(h0.index() % 3, 0);
        assert_eq!(h1.index() % 3, 0);
    }

    #[test]
    fn groups_tile_all_of_dram() {
        // Every DRAM page below num_groups*G is some page's slot.
        let g = GroupMap::new(30, 3);
        let mut covered = [false; 30];
        for p in 0..100 {
            for s in g.slots(PageId::new(p)) {
                covered[s.index() as usize] = true;
            }
        }
        assert!(covered[..30].iter().all(|&c| c), "uncovered DRAM pages");
    }

    #[test]
    fn two_bit_ctes_give_three_slots() {
        let g = GroupMap::new(300, 3);
        assert_eq!(g.short_cte_bits(), 2);
        assert_eq!(g.invalid(), 3);
        let slots: Vec<_> = g.slots(PageId::new(5)).collect();
        assert_eq!(slots.len(), 3);
    }

    #[test]
    fn slot_of_round_trips() {
        let g = GroupMap::new(3000, 3);
        let p = PageId::new(1234);
        for s in 0..3u8 {
            let d = g.dram_page(p, s);
            assert_eq!(g.slot_of(p, d), Some(s));
        }
        assert_eq!(
            g.slot_of(p, DramPageId::new(0)),
            g.slot_of(p, DramPageId::new(0))
        );
        // A DRAM page outside the group yields None.
        let outside = DramPageId::new(g.hash(p).index() + 3);
        assert_eq!(g.slot_of(p, outside), None);
    }

    #[test]
    fn remainder_pages_have_no_group() {
        // 31 data pages, G=3 -> 10 groups covering 30 pages; page 30 is
        // long-CTE-only territory.
        let g = GroupMap::new(31, 3);
        assert_eq!(g.num_groups(), 10);
        for p in 0..1000 {
            for s in g.slots(PageId::new(p)) {
                assert!(s.index() < 30);
            }
        }
    }

    #[test]
    fn larger_groups_need_more_bits() {
        assert_eq!(GroupMap::new(100, 1).short_cte_bits(), 1);
        assert_eq!(GroupMap::new(100, 3).short_cte_bits(), 2);
        assert_eq!(GroupMap::new(100, 7).short_cte_bits(), 3);
        assert_eq!(GroupMap::new(100, 15).short_cte_bits(), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_group() {
        let _ = GroupMap::new(10, 0);
    }
}
