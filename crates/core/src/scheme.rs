//! The DyLeCT memory controller (paper §IV).
//!
//! DyLeCT extends TMCC's two-level hierarchy into a three-level exclusive
//! hierarchy:
//!
//! - **ML0** — the hottest uncompressed pages, addressed by 2-bit *short
//!   CTEs* through the static group hash (see [`crate::groups`]);
//! - **ML1** — warm uncompressed pages, addressed by 8 B *long CTEs*;
//! - **ML2** — cold compressed pages, long CTEs.
//!
//! Short CTEs are pre-gathered into a dense side table whose 64 B blocks
//! cover 1 MB of OS-visible memory each; a **single CTE cache** holds both
//! pre-gathered and unified blocks. On a full CTE miss both blocks are
//! fetched in parallel (Figure 16); the pre-gathered block is always cached,
//! the unified block only when the request targets ML1/ML2.
//!
//! Promotion is gradual (ML2→ML1 on expansion, ML1→ML0 by sampled access
//! counters — Banshee's policy at 5% sampling), which avoids the naive
//! design's double page movement per expansion (§IV-A1). Demotion happens
//! when promotion needs a slot whose occupants are all ML0 (coldest-counter
//! victim) and when the background compactor picks an ML0 page as its
//! recency-tail victim.

use dylect_cache::{CacheConfig, SetAssocCache};
use dylect_compression::CompressibilityProfile;
use dylect_dram::{Dram, DramOp, RequestClass};
use dylect_memctl::controller::{
    AccessBreakdown, CteCacheGeometry, McResponse, McStats, MemoryScheme, Occupancy,
};
use dylect_memctl::counters::AccessCounters;
use dylect_memctl::layout::{LayoutOptions, McLayout};
use dylect_memctl::recency::TOUCH_PERIOD;
use dylect_memctl::store::CompressedStore;
use dylect_memctl::{transfer, DramUse, PageState, CTE_CACHE_HIT_LATENCY};
use dylect_sim_core::probe::{
    CteBlockKind, CteOp, CteRecord, McEvent, MemLevel, ProbeHandle, TranslationPath,
};
use dylect_sim_core::rng::Rng;
use dylect_sim_core::snap::{Restore as _, SnapError, SnapReader, SnapWriter, Snapshot as _};
use dylect_sim_core::{DramPageId, MachineAddr, PageId, PhysAddr, Time, PAGE_BYTES};

use crate::groups::GroupMap;

/// Configuration of a [`Dylect`] controller.
#[derive(Clone, Debug, PartialEq)]
pub struct DylectConfig {
    /// OS-visible memory size in 4 KB pages.
    pub os_pages: u64,
    /// CTE cache capacity in bytes (paper: 128 KB).
    pub cte_cache_bytes: u64,
    /// CTE cache associativity.
    pub cte_cache_ways: u32,
    /// DRAM pages per group (paper sweet spot: 3, i.e. 2-bit short CTEs).
    pub group_size: u64,
    /// Counter margin a candidate needs over the coldest ML0 occupant to
    /// displace it.
    pub promotion_threshold: u8,
    /// Minimum access count before a page is considered for promotion at
    /// all (keeps barely-warm pages from churning through ML0).
    pub min_promotion_count: u8,
    /// Access-counter sampling probability (paper: 5%).
    pub sample_rate: f64,
    /// Whole free DRAM pages the background compactor maintains.
    pub free_target_pages: u64,
    /// Cache the unified block on a full miss even when the request targets
    /// an ML0 page. The paper's policy (false) reserves CTE-cache space for
    /// high-reach pre-gathered blocks; the ablation flips this.
    pub always_cache_unified: bool,
}

impl DylectConfig {
    /// The paper's configuration (Table 3 + §V): 128 KB CTE cache, 2-bit
    /// short CTEs (group size 3), 5% counter sampling.
    pub fn paper(os_pages: u64) -> Self {
        DylectConfig {
            os_pages,
            cte_cache_bytes: 128 * 1024,
            cte_cache_ways: 8,
            group_size: 3,
            promotion_threshold: 2,
            min_promotion_count: 2,
            sample_rate: 0.05,
            free_target_pages: 256,
            always_cache_unified: false,
        }
    }
}

/// The DyLeCT memory controller.
#[derive(Clone, Debug)]
pub struct Dylect {
    cfg: DylectConfig,
    store: CompressedStore,
    layout: McLayout,
    groups: GroupMap,
    cte_cache: SetAssocCache,
    /// Mirror of the pre-gathered table: per OS page, the slot index within
    /// its DRAM page group, or `groups.invalid()` for ML1/ML2 pages.
    short_cte: Vec<u8>,
    counters: AccessCounters,
    rng: Rng,
    stats: McStats,
    probe: ProbeHandle,
    requests_seen: u64,
    ml0_count: u64,
}

impl Dylect {
    /// Builds a DyLeCT controller over `dram`, packing `cfg.os_pages` of
    /// OS-visible memory (per-page sizes from `profile`) into the DRAM.
    ///
    /// All pages start with long CTEs (ML1/ML2); warmup traffic promotes the
    /// hot set into ML0.
    ///
    /// # Panics
    ///
    /// Panics if the footprint cannot fit fully compressed.
    pub fn new(cfg: DylectConfig, dram: &Dram, profile: CompressibilityProfile, seed: u64) -> Self {
        let total_pages = dram.config().geometry.capacity_pages();
        let layout = McLayout::new(
            total_pages,
            cfg.os_pages,
            LayoutOptions {
                pregathered: true,
                counters: true,
                unified_entries: cfg.os_pages,
            },
        );
        let store = CompressedStore::pack(
            cfg.os_pages,
            layout.data_pages(),
            profile,
            seed,
            cfg.free_target_pages,
        );
        let groups = GroupMap::new(layout.data_pages(), cfg.group_size);
        let cte_cache = SetAssocCache::new(CacheConfig::lru(
            cfg.cte_cache_bytes,
            cfg.cte_cache_ways,
            64,
        ));
        let counters = AccessCounters::new(cfg.os_pages, cfg.sample_rate);
        let os_pages = cfg.os_pages;
        Dylect {
            short_cte: vec![groups.invalid(); os_pages as usize],
            cfg,
            store,
            layout,
            groups,
            cte_cache,
            counters,
            rng: Rng::new(seed ^ 0xD1_1EC7),
            stats: McStats::default(),
            probe: ProbeHandle::disabled(),
            requests_seen: 0,
            ml0_count: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DylectConfig {
        &self.cfg
    }

    /// Shared-store access for tests and harnesses.
    pub fn store(&self) -> &CompressedStore {
        &self.store
    }

    /// The group mapping in use.
    pub fn groups(&self) -> &GroupMap {
        &self.groups
    }

    /// Whether `page` currently uses a short CTE (is in ML0).
    pub fn is_ml0(&self, page: PageId) -> bool {
        self.short_cte[page.index() as usize] != self.groups.invalid()
    }

    /// Verifies scheme-level invariants (tests): every valid short CTE
    /// points at the DRAM page the directory records, and the store's space
    /// accounting balances.
    pub fn check_invariants(&self) {
        self.store.check_invariants(self.layout.data_pages());
        let mut ml0 = 0;
        for p in 0..self.cfg.os_pages {
            let page = PageId::new(p);
            let slot = self.short_cte[p as usize];
            if slot != self.groups.invalid() {
                ml0 += 1;
                let expect = self.groups.dram_page(page, slot);
                assert_eq!(
                    self.store.dir.state(page),
                    Some(PageState::Uncompressed(expect)),
                    "short CTE of page {page} is stale"
                );
            }
        }
        assert_eq!(ml0, self.ml0_count, "ml0 census drifted");
    }

    /// Marks a table block modified: dirty in cache, or one direct write.
    fn update_table(
        &mut self,
        now: Time,
        kind: CteBlockKind,
        key: u64,
        addr: MachineAddr,
        dram: &mut Dram,
    ) {
        if self.cte_cache.probe(key) {
            self.cte_cache.fill(key, true, ());
        } else {
            dram.access(now, addr, DramOp::Write, RequestClass::CteFetch);
        }
        self.probe.emit_cte(&CteRecord {
            kind,
            op: CteOp::Touch,
            key,
        });
    }

    fn update_unified(&mut self, now: Time, page: PageId, dram: &mut Dram) {
        let key = self.layout.unified_block_key(page.index());
        let addr = self.layout.unified_block_addr(page.index());
        self.update_table(now, CteBlockKind::Unified, key, addr, dram);
    }

    fn update_pregathered(&mut self, now: Time, page: PageId, dram: &mut Dram) {
        let key = self.layout.pregathered_block_key(page);
        let addr = self.layout.pregathered_block_addr(page);
        self.update_table(now, CteBlockKind::Pregathered, key, addr, dram);
    }

    /// Mirrors one real CTE-cache lookup to the shadow tag arrays.
    #[inline]
    fn emit_lookup(&self, kind: CteBlockKind, key: u64, hit: bool, fill_on_miss: bool) {
        self.probe.emit_cte(&CteRecord {
            kind,
            op: CteOp::Lookup { hit, fill_on_miss },
            key,
        });
    }

    /// Switches `page` to a short CTE (long → short). Every ML1→ML0
    /// promotion funnels through here, so this is the one probe site.
    fn set_short(&mut self, now: Time, page: PageId, slot: u8, dram: &mut Dram) {
        debug_assert!(!self.is_ml0(page));
        self.short_cte[page.index() as usize] = slot;
        self.ml0_count += 1;
        self.update_pregathered(now, page, dram);
        self.update_unified(now, page, dram);
        self.probe.emit(now, McEvent::Promotion, page.index());
    }

    /// Switches `page` back to a long CTE (short → long). Every ML0→ML1
    /// demotion (promotion-displacement or compactor victim) funnels
    /// through here, so this is the one probe site.
    fn clear_short(&mut self, now: Time, page: PageId, dram: &mut Dram) {
        debug_assert!(self.is_ml0(page));
        self.short_cte[page.index() as usize] = self.groups.invalid();
        self.ml0_count -= 1;
        self.update_pregathered(now, page, dram);
        self.update_unified(now, page, dram);
        self.probe.emit(now, McEvent::Demotion, page.index());
    }

    /// Fills a CTE block into the single cache, billing any dirty-eviction
    /// writeback.
    fn fill_cte(&mut self, now: Time, key: u64, dram: &mut Dram) {
        if let Some(ev) = self.cte_cache.fill(key, false, ()) {
            if ev.dirty {
                let wb = MachineAddr::new(ev.key * 64);
                dram.access(now, wb, DramOp::Write, RequestClass::CteFetch);
            }
        }
    }

    /// CTE cache lookup / parallel dual fetch on miss (Figures 14–16).
    /// Returns the time translation is available and which path served it
    /// (for latency attribution).
    fn translate(&mut self, now: Time, page: PageId, dram: &mut Dram) -> (Time, TranslationPath) {
        let in_ml0 = self.is_ml0(page);
        let pg_key = self.layout.pregathered_block_key(page);
        let uni_key = self.layout.unified_block_key(page.index());

        if self.cte_cache.access(pg_key) {
            self.emit_lookup(CteBlockKind::Pregathered, pg_key, true, false);
            if in_ml0 {
                self.stats.cte_hits_pregathered.incr();
                return (now + CTE_CACHE_HIT_LATENCY, TranslationPath::ShortCteHit);
            }
            // Short CTE is INVALID: need the long CTE from the unified block.
            if self.cte_cache.access(uni_key) {
                self.emit_lookup(CteBlockKind::Unified, uni_key, true, false);
                self.stats.cte_hits_unified.incr();
                return (now + CTE_CACHE_HIT_LATENCY, TranslationPath::LongCteHit);
            }
            // Miss for an ML1/ML2 page with the pre-gathered block cached:
            // fetch only the unified block and cache it (target is ML1/ML2).
            self.emit_lookup(CteBlockKind::Unified, uni_key, false, true);
            self.stats.cte_misses.incr();
            let done = dram.access(
                now,
                self.layout.unified_block_addr(page.index()),
                DramOp::Read,
                RequestClass::CteFetch,
            );
            self.fill_cte(done, uni_key, dram);
            return (done, TranslationPath::CteMiss);
        }

        if self.cte_cache.access(uni_key) {
            // The unified entry holds the short CTE too, so it serves ML0
            // pages as well as ML1/ML2 pages. The pre-gathered block missed
            // but is not fetched (and so not filled) on this path.
            self.emit_lookup(CteBlockKind::Pregathered, pg_key, false, false);
            self.emit_lookup(CteBlockKind::Unified, uni_key, true, false);
            self.stats.cte_hits_unified.incr();
            return (now + CTE_CACHE_HIT_LATENCY, TranslationPath::LongCteHit);
        }

        // Full miss: fetch the pre-gathered and unified blocks in parallel.
        self.emit_lookup(CteBlockKind::Pregathered, pg_key, false, true);
        self.emit_lookup(
            CteBlockKind::Unified,
            uni_key,
            false,
            !in_ml0 || self.cfg.always_cache_unified,
        );
        self.stats.cte_misses.incr();
        let id_pg = dram.submit(
            now,
            self.layout.pregathered_block_addr(page),
            DramOp::Read,
            RequestClass::CteFetch,
        );
        let id_uni = dram.submit(
            now,
            self.layout.unified_block_addr(page.index()),
            DramOp::Read,
            RequestClass::CteFetch,
        );
        dram.drain();
        let t_pg = dram.take_completion(id_pg).expect("drained");
        let t_uni = dram.take_completion(id_uni).expect("drained");

        // Always cache the pre-gathered block; cache the unified block only
        // if the request is to an ML1/ML2 page (or unconditionally under
        // the ablation policy).
        self.fill_cte(t_pg, pg_key, dram);
        if !in_ml0 || self.cfg.always_cache_unified {
            self.fill_cte(t_uni, uni_key, dram);
        }
        let done = if in_ml0 {
            // Data access may begin as soon as either block arrives.
            t_pg.min(t_uni)
        } else {
            t_uni
        };
        (done, TranslationPath::CteMiss)
    }

    /// Background compaction toward the free-page target, demoting ML0
    /// victims correctly (short CTE cleared before compression).
    fn maintain_free(&mut self, now: Time, target: u64, dram: &mut Dram) -> Time {
        let mut t = now;
        let mut guard = 128;
        while (self.store.free.free_page_count() as u64) < target && guard > 0 {
            guard -= 1;
            let Some(victim) = self.store.recency.tail() else {
                break;
            };
            if self.is_ml0(victim) {
                self.clear_short(t, victim, dram);
            }
            self.counters.reset(victim);
            t = self.store.compact_page(dram, t, victim);
            self.update_unified(t, victim, dram);
            self.stats.compactions.incr();
            self.probe.emit(t, McEvent::Compaction, victim.index());
        }
        t
    }

    /// Relocates every compressed span out of `slot` so the whole DRAM page
    /// becomes free; returns the completion time, or `None` if free space
    /// ran out (promotion is then abandoned — partial relocations are
    /// harmless).
    fn vacate_pool_page(&mut self, now: Time, slot: DramPageId, dram: &mut Dram) -> Option<Time> {
        let residents: Vec<PageId> = self.store.dir.compressed_pages_in(slot).to_vec();
        let mut t = now;
        for q in residents {
            let Some(PageState::Compressed(span)) = self.store.dir.state(q) else {
                unreachable!("resident list says q is compressed here");
            };
            let new_span = self.store.free.alloc_span_excluding(span.len, slot)?;
            let r = transfer::read_span(dram, t, span, RequestClass::Migration);
            t = transfer::write_span(dram, r, new_span, RequestClass::Migration);
            self.store.dir.place_compressed(q, new_span);
            self.store.free.free_span(span);
            self.update_unified(t, q, dram);
            self.stats.displacements.incr();
            self.probe.emit(t, McEvent::Displacement, q.index());
        }
        // All spans are gone; the page's holes have coalesced.
        self.store.free.take_specific_page(slot).then_some(t)
    }

    /// ML1→ML0 promotion (paper §IV-B): move `page` into its DRAM page
    /// group, displacing colder occupants as needed.
    fn try_promote(&mut self, now: Time, page: PageId, dram: &mut Dram) {
        debug_assert!(!self.is_ml0(page));
        if self.counters.get(page) < self.cfg.min_promotion_count {
            return; // not warm enough to be worth a migration
        }
        let Some(PageState::Uncompressed(cur)) = self.store.dir.state(page) else {
            return; // only uncompressed pages can be promoted
        };

        // Lucky case: the page already sits in one of its group's slots —
        // switching to a short CTE needs no data movement at all.
        if let Some(slot) = self.groups.slot_of(page, cur) {
            self.set_short(now, page, slot, dram);
            self.stats.promotions.incr();
            return;
        }

        let slots: Vec<DramPageId> = self.groups.slots(page).collect();

        // 1) A free slot: move straight in.
        for (i, &s) in slots.iter().enumerate() {
            if self.store.free.take_specific_page(s) {
                let t = self
                    .store
                    .move_uncompressed(dram, now, page, s, RequestClass::Migration);
                self.update_unified(t, page, dram);
                self.set_short(t, page, i as u8, dram);
                self.stats.promotions.incr();
                return;
            }
        }

        // 2) A slot holding displaceable content (an ML1 page or compressed
        //    spans): migrate it elsewhere via its long CTE(s).
        for (i, &s) in slots.iter().enumerate() {
            match self.store.dir.dram_use(s) {
                DramUse::Uncompressed(q) if !self.is_ml0(q) && q != page => {
                    let Some(dst) = self.store.free.take_any_page() else {
                        return;
                    };
                    let t =
                        self.store
                            .move_uncompressed(dram, now, q, dst, RequestClass::Migration);
                    self.update_unified(t, q, dram);
                    self.stats.displacements.incr();
                    self.probe.emit(t, McEvent::Displacement, q.index());
                    let taken = self.store.free.take_specific_page(s);
                    debug_assert!(taken, "slot freed by displacement");
                    let t = self
                        .store
                        .move_uncompressed(dram, t, page, s, RequestClass::Migration);
                    self.update_unified(t, page, dram);
                    self.set_short(t, page, i as u8, dram);
                    self.stats.promotions.incr();
                    return;
                }
                DramUse::Pool => {
                    let Some(t) = self.vacate_pool_page(now, s, dram) else {
                        continue;
                    };
                    let t = self
                        .store
                        .move_uncompressed(dram, t, page, s, RequestClass::Migration);
                    self.update_unified(t, page, dram);
                    self.set_short(t, page, i as u8, dram);
                    self.stats.promotions.incr();
                    return;
                }
                _ => {}
            }
        }

        // 3) Every slot holds an ML0 page: demote the coldest if `page` is
        //    hotter by the threshold.
        let mut coldest: Option<(usize, PageId, u8)> = None;
        for (i, &s) in slots.iter().enumerate() {
            if let DramUse::Uncompressed(q) = self.store.dir.dram_use(s) {
                if self.is_ml0(q) {
                    let c = self.counters.get(q);
                    if coldest.is_none_or(|(_, _, cc)| c < cc) {
                        coldest = Some((i, q, c));
                    }
                }
            }
        }
        let Some((i, q, cq)) = coldest else {
            return;
        };
        if self.counters.get(page) <= cq.saturating_add(self.cfg.promotion_threshold) {
            return; // not hot enough to justify a demotion
        }
        let Some(dst) = self.store.free.take_any_page() else {
            return;
        };
        let s = slots[i];
        self.clear_short(now, q, dram);
        let t = self
            .store
            .move_uncompressed(dram, now, q, dst, RequestClass::Migration);
        self.update_unified(t, q, dram);
        self.stats.demotions.incr();
        let taken = self.store.free.take_specific_page(s);
        debug_assert!(taken, "slot freed by demotion");
        let t = self
            .store
            .move_uncompressed(dram, t, page, s, RequestClass::Migration);
        self.update_unified(t, page, dram);
        self.set_short(t, page, i as u8, dram);
        self.stats.promotions.incr();
    }
}

impl MemoryScheme for Dylect {
    fn name(&self) -> &'static str {
        "dylect"
    }

    fn access(&mut self, now: Time, addr: PhysAddr, is_write: bool, dram: &mut Dram) -> McResponse {
        let page = addr.page();
        debug_assert!(page.index() < self.cfg.os_pages, "address out of range");
        self.stats.requests.incr();
        self.requests_seen += 1;
        if self.requests_seen.is_multiple_of(TOUCH_PERIOD) && !self.store.is_compressed(page) {
            self.store.recency.touch(page);
        }

        // Level is classified before expansion: an ML2 access stays an ML2
        // access for attribution even though the page lands in ML1.
        let level = if self.is_ml0(page) {
            MemLevel::Ml0
        } else if self.store.is_compressed(page) {
            MemLevel::Ml2
        } else {
            MemLevel::Ml1
        };
        let (t_translated, path) = self.translate(now, page, dram);

        // ML2 pages expand gradually to ML1 (long CTE, any free page).
        let expanded = if self.store.is_compressed(page) {
            if self.store.free.free_page_count() == 0 {
                // Keep the store's emergency path from compacting an ML0
                // victim behind our back.
                self.maintain_free(t_translated, 1, dram);
            }
            let (_, ready) = self
                .store
                .expand(dram, t_translated, page, RequestClass::Migration);
            self.update_unified(ready, page, dram);
            self.stats.expansions.incr();
            self.probe.emit(ready, McEvent::Expansion, page.index());
            Some(ready)
        } else {
            None
        };
        let t_data_start = expanded.unwrap_or(t_translated);

        let Some(PageState::Uncompressed(dpage)) = self.store.dir.state(page) else {
            unreachable!("page uncompressed after expansion");
        };
        let machine = dpage.base_addr().offset(addr.page_offset());
        let (op, class) = if is_write {
            (DramOp::Write, RequestClass::Writeback)
        } else {
            (DramOp::Read, RequestClass::Demand)
        };
        let detail = dram.access_detailed(t_data_start, machine.block_base(), op, class);
        let data_ready = detail.done;

        // Promotion policy: sampled counter increment; on a sampled access
        // the MC fetches the counter block for comparison (paper §IV-D).
        if self.counters.on_access(page, &mut self.rng) {
            dram.access(
                data_ready,
                self.layout.counter_block_addr(page),
                DramOp::Read,
                RequestClass::Metadata,
            );
            if !self.is_ml0(page) {
                self.try_promote(data_ready, page, dram);
            }
        }

        // Demand-adaptive compaction off the critical path.
        if expanded.is_some() {
            self.maintain_free(data_ready, self.store.free_target_pages(), dram);
        }

        let overhead = t_data_start - now;
        self.stats
            .translation_latency
            .record_time_ns(t_translated.saturating_sub(now));
        self.stats.overhead_latency.record_time_ns(overhead);
        let (decompression, migration) =
            AccessBreakdown::split_expansion(t_data_start.saturating_sub(t_translated), PAGE_BYTES);
        McResponse {
            data_ready,
            overhead,
            breakdown: AccessBreakdown {
                path,
                level,
                translation: t_translated.saturating_sub(now),
                decompression,
                migration,
                ..AccessBreakdown::default()
            }
            .with_dram(detail),
        }
    }

    fn set_warmup(&mut self, warmup: bool) {
        let rate = if warmup { 0.5 } else { self.cfg.sample_rate };
        self.counters.set_sample_rate(rate);
    }

    fn apply_pressure(&mut self, now: Time, extra_free_pages: u64, dram: &mut Dram) {
        // Ballooning: raise the free target past the steady-state floor and
        // let the normal maintenance loop demote/compact until it is met
        // (or until its per-call guard trips; repeated events keep
        // squeezing). Runs through the same compaction machinery as
        // steady-state maintenance, so events show up as compaction bursts
        // in the stats and probe stream.
        let target = self
            .store
            .free_target_pages()
            .saturating_add(extra_free_pages);
        self.maintain_free(now, target, dram);
    }

    fn set_probe(&mut self, probe: ProbeHandle) {
        self.probe = probe;
    }

    fn cte_cache_geometry(&self) -> Option<CteCacheGeometry> {
        let c = self.cte_cache.config();
        Some(CteCacheGeometry {
            capacity_bytes: c.capacity_bytes,
            ways: c.ways,
            block_bytes: c.block_bytes,
            group_size: self.groups.group_size(),
            num_groups: self.groups.num_groups(),
        })
    }

    fn stats(&self) -> &McStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = McStats::default();
        self.cte_cache.reset_stats();
    }

    fn occupancy(&self) -> Occupancy {
        let (unc, comp) = self.store.dir.census();
        Occupancy {
            ml0_pages: self.ml0_count,
            ml1_pages: unc - self.ml0_count,
            ml2_pages: comp,
            free_pages: self.store.free.free_page_count() as u64,
            free_bytes: self.store.free.free_bytes(),
        }
    }

    // `cfg`, `layout`, and `groups` are construction state; the probe is
    // reinstalled by the owner after restore.
    fn write_snapshot(&self, w: &mut SnapWriter) {
        self.store.write_snapshot(w);
        self.cte_cache.write_snapshot(w);
        w.seq(self.short_cte.len());
        w.bytes(&self.short_cte);
        self.counters.write_snapshot(w);
        self.rng.write_snapshot(w);
        self.stats.write_snapshot(w);
        w.u64(self.requests_seen);
        w.u64(self.ml0_count);
    }

    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.store.restore_snapshot(r)?;
        self.cte_cache.restore_snapshot(r)?;
        r.fixed_seq(self.short_cte.len(), "short CTE table size")?;
        let n = self.short_cte.len();
        self.short_cte.copy_from_slice(r.bytes(n)?);
        let invalid = self.groups.invalid();
        let mut ml0 = 0u64;
        for &s in &self.short_cte {
            if s != invalid {
                if (s as u64) >= self.cfg.group_size {
                    return Err(SnapError::Corrupt("short CTE slot out of range"));
                }
                ml0 += 1;
            }
        }
        self.counters.restore_snapshot(r)?;
        self.rng.restore_snapshot(r)?;
        self.stats.restore_snapshot(r)?;
        self.requests_seen = r.u64()?;
        self.ml0_count = r.u64()?;
        if self.ml0_count != ml0 {
            return Err(SnapError::Corrupt("ml0 census disagrees with short CTEs"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dylect_dram::DramConfig;
    use dylect_sim_core::PAGE_BYTES;

    fn profile() -> CompressibilityProfile {
        CompressibilityProfile::with_mean_ratio("t", 3.0)
    }

    fn setup(os_pages: u64) -> (Dylect, Dram) {
        let dram = Dram::new(DramConfig::paper(1 << 28, 8));
        let d = Dylect::new(DylectConfig::paper(os_pages), &dram, profile(), 3);
        (d, dram)
    }

    fn addr(p: u64) -> PhysAddr {
        PhysAddr::new(p * PAGE_BYTES)
    }

    /// Drives accesses to one page until it gets promoted (sampling is
    /// probabilistic), bounded to keep the test finite.
    fn hammer_until_ml0(d: &mut Dylect, dram: &mut Dram, p: u64, max: u32) -> bool {
        let mut t = Time::ZERO;
        for _ in 0..max {
            let r = d.access(t, addr(p), false, dram);
            t = r.data_ready;
            if d.is_ml0(PageId::new(p)) {
                return true;
            }
        }
        false
    }

    #[test]
    fn pages_start_with_long_ctes() {
        let (d, _) = setup(80_000);
        assert_eq!(d.occupancy().ml0_pages, 0);
        d.check_invariants();
    }

    #[test]
    fn hot_page_gets_promoted_to_ml0() {
        let (mut d, mut dram) = setup(80_000);
        let p = (0..80_000)
            .find(|&p| !d.store().is_compressed(PageId::new(p)))
            .unwrap();
        assert!(
            hammer_until_ml0(&mut d, &mut dram, p, 500),
            "hot page never promoted"
        );
        assert!(d.stats().promotions.get() >= 1);
        d.check_invariants();
    }

    #[test]
    fn ml0_hits_come_from_pregathered_blocks() {
        let (mut d, mut dram) = setup(80_000);
        let p = (0..80_000)
            .find(|&p| !d.store().is_compressed(PageId::new(p)))
            .unwrap();
        assert!(hammer_until_ml0(&mut d, &mut dram, p, 500));
        d.reset_stats();
        let r1 = d.access(Time::ZERO, addr(p), false, &mut dram);
        d.access(r1.data_ready, addr(p), false, &mut dram);
        assert!(d.stats().cte_hits_pregathered.get() >= 1);
    }

    #[test]
    fn pregathered_block_covers_a_megabyte() {
        let (mut d, mut dram) = setup(80_000);
        // Promote two pages in the same 256-page region, then a fresh
        // lookup of either should share the pre-gathered block.
        let region_pages: Vec<u64> = (0..256)
            .filter(|&p| !d.store().is_compressed(PageId::new(p)))
            .take(2)
            .collect();
        assert_eq!(region_pages.len(), 2, "need two uncompressed pages");
        for &p in &region_pages {
            assert!(hammer_until_ml0(&mut d, &mut dram, p, 800), "page {p}");
        }
        d.reset_stats();
        let r = d.access(Time::from_us(50), addr(region_pages[0]), false, &mut dram);
        d.access(r.data_ready, addr(region_pages[1]), false, &mut dram);
        // At most one miss (the first fetch); the second page rides the same
        // pre-gathered block.
        assert!(d.stats().cte_misses.get() <= 1);
        assert!(d.stats().cte_hits_pregathered.get() >= 1);
    }

    #[test]
    fn compressed_access_expands_to_ml1_not_ml0() {
        let (mut d, mut dram) = setup(80_000);
        let p = (0..80_000)
            .find(|&p| d.store().is_compressed(PageId::new(p)))
            .expect("compression pressure");
        let r = d.access(Time::ZERO, addr(p), false, &mut dram);
        assert!(!d.store().is_compressed(PageId::new(p)));
        assert!(
            !d.is_ml0(PageId::new(p)),
            "gradual promotion: ML2->ML1 only"
        );
        assert_eq!(d.stats().expansions.get(), 1);
        assert!(r.overhead.as_ns() >= 280.0);
        d.check_invariants();
    }

    #[test]
    fn promotion_displaces_cold_occupants() {
        let (mut d, mut dram) = setup(80_000);
        // Promote many pages; eventually promotions will find occupied
        // slots and displace.
        let targets: Vec<u64> = (0..80_000)
            .filter(|&p| !d.store().is_compressed(PageId::new(p)))
            .take(60)
            .collect();
        let mut t = Time::ZERO;
        for &p in &targets {
            for _ in 0..200 {
                let r = d.access(t, addr(p), false, &mut dram);
                t = r.data_ready;
                if d.is_ml0(PageId::new(p)) {
                    break;
                }
            }
        }
        let promoted = targets
            .iter()
            .filter(|&&p| d.is_ml0(PageId::new(p)))
            .count();
        assert!(promoted > 10, "only {promoted} promotions");
        d.check_invariants();
    }

    #[test]
    fn invariants_survive_mixed_churn() {
        let (mut d, mut dram) = setup(80_000);
        let mut t = Time::ZERO;
        for i in 0..3000u64 {
            let p = (i * 6151) % 80_000;
            let r = d.access(t, addr(p), i % 7 == 0, &mut dram);
            t = r.data_ready;
        }
        d.check_invariants();
        let occ = d.occupancy();
        assert_eq!(occ.ml0_pages + occ.ml1_pages + occ.ml2_pages, 80_000);
    }

    #[test]
    fn hot_set_concentrates_in_ml0() {
        let (mut d, mut dram) = setup(80_000);
        let hot: Vec<u64> = (0..80_000)
            .filter(|&p| !d.store().is_compressed(PageId::new(p)))
            .take(32)
            .collect();
        // With 5% sampling and a min count of 2, a page needs ~40+ accesses
        // before promotion becomes likely.
        let mut t = Time::ZERO;
        for round in 0..3200u64 {
            let p = hot[(round % hot.len() as u64) as usize];
            let r = d.access(t, addr(p), false, &mut dram);
            t = r.data_ready;
        }
        let in_ml0 = hot.iter().filter(|&&p| d.is_ml0(PageId::new(p))).count();
        assert!(in_ml0 > hot.len() / 4, "only {in_ml0}/{} in ML0", hot.len());
        d.check_invariants();
    }

    #[test]
    fn maintain_demotes_ml0_victims_cleanly() {
        let (mut d, mut dram) = setup(80_000);
        // Promote a page, then hammer compressed pages until compaction
        // recycles it.
        let p = (0..80_000)
            .find(|&p| !d.store().is_compressed(PageId::new(p)))
            .unwrap();
        assert!(hammer_until_ml0(&mut d, &mut dram, p, 500));
        let mut t = Time::from_us(100);
        let compressed: Vec<u64> = (0..80_000)
            .filter(|&q| d.store().is_compressed(PageId::new(q)))
            .take(800)
            .collect();
        for q in compressed {
            let r = d.access(t, addr(q), false, &mut dram);
            t = r.data_ready;
        }
        // Whatever happened, the short-CTE mirror must be consistent.
        d.check_invariants();
    }

    #[test]
    fn overhead_excludes_demand_access_itself() {
        let (mut d, mut dram) = setup(10_000);
        let r1 = d.access(Time::ZERO, addr(0), false, &mut dram);
        let r2 = d.access(r1.data_ready, addr(0), false, &mut dram);
        // CTE hit on second access: overhead = hit latency only.
        assert_eq!(r2.overhead, CTE_CACHE_HIT_LATENCY);
    }

    #[test]
    fn full_miss_fetches_both_blocks() {
        let (mut d, mut dram) = setup(10_000);
        d.access(Time::ZERO, addr(0), false, &mut dram);
        // One full CTE miss -> two CTE block reads.
        assert_eq!(dram.stats().class_blocks(RequestClass::CteFetch), 2);
        assert_eq!(d.stats().cte_misses.get(), 1);
    }

    #[test]
    fn low_pressure_lets_ml0_grow_large() {
        // Plenty of DRAM: almost everything uncompressed, ML0 can scale up.
        let dram0 = Dram::new(DramConfig::paper(1 << 28, 8));
        let mut d = Dylect::new(DylectConfig::paper(30_000), &dram0, profile(), 3);
        let mut dram = dram0;
        // A reused 3000-page working set: with 5% counter sampling and a
        // min count of 2, ~60 touches per page make promotion likely, and
        // low pressure means group slots are usually free.
        let mut t = Time::ZERO;
        for i in 0..180_000u64 {
            let p = (i * 17) % 3_000;
            let r = d.access(t, addr(p), false, &mut dram);
            t = r.data_ready;
        }
        let in_ml0 = (0..3_000).filter(|&p| d.is_ml0(PageId::new(p))).count() as f64 / 3_000.0;
        assert!(
            in_ml0 > 0.4,
            "only {in_ml0:.2} of the working set reached ML0 under low pressure"
        );
        d.check_invariants();
    }
}
