//! **DyLeCT** — *Dynamic Length Compressed-Memory Translations* (ISCA 2024).
//!
//! Hardware memory compression adds a new layer of address translation in
//! the memory controller: compressed-memory translation entries (CTEs) map
//! OS-physical pages to machine-physical DRAM locations. For large irregular
//! workloads running under 2 MB huge pages, the CTE cache becomes the
//! dominant translation bottleneck — a 128 KB cache of 8 B CTEs reaches only
//! 64 MB, versus the >2 GB reach of a huge-page TLB.
//!
//! DyLeCT closes that gap by **dynamically switching the length of each
//! page's CTE**:
//!
//! - hot pages are migrated into one of the three DRAM pages of their *DRAM
//!   page group* (a set-associative, aligned placement), so a **2-bit short
//!   CTE** suffices — 32× smaller than a long CTE, giving a 64 B pre-gathered
//!   block 1 MB of translation reach;
//! - cold pages keep **8 B long CTEs** with fully-associative placement, so
//!   every irregular compression-freed hole in DRAM stays usable and the
//!   compression ratio is not sacrificed.
//!
//! The implementation lives in two modules:
//!
//! - [`groups`] — the static hash mapping each OS page to its DRAM page
//!   group (paper Figure 11);
//! - [`scheme`] — the [`Dylect`] controller: the three-level ML0/ML1/ML2
//!   hierarchy, the pre-gathered table, the single dual-block-type CTE
//!   cache with parallel miss fetches, and the promotion/demotion policies
//!   (paper Figures 12–16);
//! - [`naive`] — the strawman dynamic-length design of §IV-A3 (split CTE
//!   caches, direct ML2→ML0 expansion with double page movement), kept as
//!   an ablation baseline.
//!
//! # Example
//!
//! ```
//! use dylect_compression::CompressibilityProfile;
//! use dylect_core::{Dylect, DylectConfig};
//! use dylect_dram::{Dram, DramConfig};
//! use dylect_memctl::MemoryScheme;
//! use dylect_sim_core::{PhysAddr, Time};
//!
//! let mut dram = Dram::new(DramConfig::paper(1 << 28, 8));
//! let profile = CompressibilityProfile::with_mean_ratio("demo", 3.4);
//! let mut mc = Dylect::new(DylectConfig::paper(80_000), &dram, profile, 7);
//! let r = mc.access(Time::ZERO, PhysAddr::new(0x3000), false, &mut dram);
//! assert!(r.data_ready > Time::ZERO);
//! ```

pub mod groups;
pub mod naive;
pub mod scheme;

pub use groups::GroupMap;
pub use naive::{NaiveDynamic, NaiveDynamicConfig, ShortCacheOption};
pub use scheme::{Dylect, DylectConfig};
