//! The naive dynamic-length design (paper §IV-A3), kept as an ablation
//! baseline.
//!
//! This strawman switches between 2-bit short CTEs for *all* uncompressed
//! pages and 8 B long CTEs for compressed pages, with none of DyLeCT's two
//! key fixes:
//!
//! 1. **Bandwidth**: expansion goes *directly* from ML2 into the page's
//!    DRAM page group. In a highly occupied memory every slot is usually
//!    taken, so each expansion first displaces an occupant — two page
//!    movements instead of one (§IV-A1).
//! 2. **Cacheability**: two *separate* 64 KB CTE caches hold short and long
//!    CTEs. Short CTEs are gathered, 8 at a time, from a fetched unified
//!    block into a 2 B line whose 4 B tag wastes two thirds of the SRAM
//!    (§IV-A2, "Option A"); we model that waste by shrinking the effective
//!    line count accordingly.
//!
//! The paper measures this design at a 76% CTE hit rate (barely above
//! TMCC's 67%) and a 5% performance *loss*; the `naive_ablation` bench
//! reproduces that comparison.

use dylect_cache::sector::{SectorCache, SectorOutcome};
use dylect_cache::{CacheConfig, SetAssocCache};
use dylect_compression::CompressibilityProfile;
use dylect_dram::{Dram, DramOp, RequestClass};
use dylect_memctl::controller::{
    AccessBreakdown, CteCacheGeometry, McResponse, McStats, MemoryScheme, Occupancy,
};
use dylect_memctl::layout::{LayoutOptions, McLayout};
use dylect_memctl::recency::TOUCH_PERIOD;
use dylect_memctl::store::CompressedStore;
use dylect_memctl::{transfer, DramUse, PageState, CTE_CACHE_HIT_LATENCY};
use dylect_sim_core::probe::{
    CteBlockKind, CteOp, CteRecord, McEvent, MemLevel, ProbeHandle, TranslationPath,
};
use dylect_sim_core::snap::{Restore as _, SnapError, SnapReader, SnapWriter, Snapshot as _};
use dylect_sim_core::{DramPageId, PageId, PhysAddr, Time, PAGE_BYTES};

use crate::groups::GroupMap;

/// How the naive design organizes its short-CTE cache (paper Figure 9).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum ShortCacheOption {
    /// Option A: 2 B gathered cachelines; the 4 B tag per line wastes two
    /// thirds of the SRAM area.
    #[default]
    GatheredA,
    /// Option B: 64 B sector-cache lines (32 × 2 B sectors) amortize the
    /// tag, but each fetched unified block fills only one sector, so lines
    /// warm up slowly and waste most bits in the common case.
    SectorB,
}

/// Configuration of the naive design.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaiveDynamicConfig {
    /// OS-visible memory size in 4 KB pages.
    pub os_pages: u64,
    /// SRAM budget of *each* of the two CTE caches (paper: 64 KB + 64 KB).
    pub cache_bytes: u64,
    /// DRAM pages per group.
    pub group_size: u64,
    /// Free-page target for background compaction.
    pub free_target_pages: u64,
    /// Short-CTE cache organization (Figure 9 Option A or B).
    pub short_cache: ShortCacheOption,
}

impl NaiveDynamicConfig {
    /// The §IV-A3 configuration: two 64 KB caches, 2-bit short CTEs.
    pub fn paper(os_pages: u64) -> Self {
        NaiveDynamicConfig {
            os_pages,
            cache_bytes: 64 * 1024,
            group_size: 3,
            free_target_pages: 256,
            short_cache: ShortCacheOption::GatheredA,
        }
    }
}

/// The naive design's short-CTE cache: one of the two Figure 9 options.
#[derive(Clone, Debug)]
enum ShortCteCache {
    /// Option A: gathered 2 B lines (keyed by unified-block index).
    Gathered(SetAssocCache),
    /// Option B: 64 B sector lines, one 2 B sector per unified block.
    Sector(SectorCache),
}

impl ShortCteCache {
    fn access(&mut self, unified_block: u64) -> bool {
        match self {
            ShortCteCache::Gathered(c) => c.access(unified_block),
            ShortCteCache::Sector(c) => c.access(unified_block) == SectorOutcome::Hit,
        }
    }

    fn fill(&mut self, unified_block: u64) {
        match self {
            ShortCteCache::Gathered(c) => {
                c.fill(unified_block, false, ());
            }
            ShortCteCache::Sector(c) => {
                c.fill(unified_block);
            }
        }
    }

    fn reset_stats(&mut self) {
        match self {
            ShortCteCache::Gathered(c) => c.reset_stats(),
            ShortCteCache::Sector(c) => c.reset_stats(),
        }
    }

    // The variant is configuration, so the tag byte is a consistency guard,
    // not a choice the snapshot can change.
    fn write_snapshot(&self, w: &mut SnapWriter) {
        match self {
            ShortCteCache::Gathered(c) => {
                w.u8(0);
                c.write_snapshot(w);
            }
            ShortCteCache::Sector(c) => {
                w.u8(1);
                c.write_snapshot(w);
            }
        }
    }

    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        match (r.u8()?, self) {
            (0, ShortCteCache::Gathered(c)) => c.restore_snapshot(r),
            (1, ShortCteCache::Sector(c)) => c.restore_snapshot(r),
            (0 | 1, _) => Err(SnapError::Mismatch("short-CTE cache organization")),
            _ => Err(SnapError::Corrupt("unknown short-CTE cache tag")),
        }
    }
}

/// The naive dynamic-length controller.
#[derive(Clone, Debug)]
pub struct NaiveDynamic {
    cfg: NaiveDynamicConfig,
    store: CompressedStore,
    layout: McLayout,
    groups: GroupMap,
    /// Short-CTE cache (Figure 9 Option A or B).
    short_cache: ShortCteCache,
    /// Long-CTE cache: 8 B lines, one long CTE each, 4 B tag overhead.
    long_cache: SetAssocCache,
    short_cte: Vec<u8>,
    stats: McStats,
    probe: ProbeHandle,
    requests_seen: u64,
    /// Deterministic victim rotation for slot displacement.
    rotate: u64,
}

/// Tag bit distinguishing the naive design's long-CTE lookups from its
/// short-CTE lookups in the shadow probe's single key space (the two real
/// caches index by overlapping unified-block numbers).
const NAIVE_LONG_KEY_TAG: u64 = 1 << 62;

impl NaiveDynamic {
    /// Builds the naive controller; uncompressed pages that cannot be
    /// placed in their group at packing time are compressed instead (the
    /// rigid placement wastes space — exactly the paper's Figure 1b).
    ///
    /// # Panics
    ///
    /// Panics if the footprint cannot fit fully compressed.
    pub fn new(
        cfg: NaiveDynamicConfig,
        dram: &Dram,
        profile: CompressibilityProfile,
        seed: u64,
    ) -> Self {
        let total_pages = dram.config().geometry.capacity_pages();
        let layout = McLayout::new(
            total_pages,
            cfg.os_pages,
            LayoutOptions {
                pregathered: false,
                counters: false,
                unified_entries: cfg.os_pages,
            },
        );
        let mut store = CompressedStore::pack(
            cfg.os_pages,
            layout.data_pages(),
            profile,
            seed,
            cfg.free_target_pages,
        );
        let groups = GroupMap::new(layout.data_pages(), cfg.group_size);
        let mut short_cte = vec![groups.invalid(); cfg.os_pages as usize];

        // Fix up initial placement: every uncompressed page must live in its
        // group; otherwise relocate it there or compress it (no billing —
        // this is pre-simulation packing).
        for p in 0..cfg.os_pages {
            let page = PageId::new(p);
            let Some(PageState::Uncompressed(cur)) = store.dir.state(page) else {
                continue;
            };
            if let Some(slot) = groups.slot_of(page, cur) {
                short_cte[p as usize] = slot;
                continue;
            }
            let free_slot = groups
                .slots(page)
                .enumerate()
                .find(|&(_, s)| store.free.take_specific_page(s));
            if let Some((i, s)) = free_slot {
                store.dir.detach(page);
                store.free.add_page(cur);
                store.dir.place_uncompressed(page, s);
                short_cte[p as usize] = i as u8;
            } else {
                // Rigid placement cannot host it: compress.
                store.recency.remove(page);
                let size = store.compressed_size(page);
                store.dir.detach(page);
                store.free.add_page(cur);
                let span = store.free.alloc_span(size).expect("just freed a page");
                store.dir.place_compressed(page, span);
            }
        }

        // Area modeling per Figure 9. Option A: each 2 B line pays a 4 B
        // tag, so only a third of the SRAM budget holds CTEs. Option B:
        // 64 B lines amortize the tag (~94% data), but fills are per-sector.
        let short_cache = match cfg.short_cache {
            ShortCacheOption::GatheredA => {
                let lines = (cfg.cache_bytes * 2 / 6 / 2 / 8) * 8;
                ShortCteCache::Gathered(SetAssocCache::new(CacheConfig::lru(lines, 8, 1)))
            }
            ShortCacheOption::SectorB => {
                let lines = (cfg.cache_bytes * 64 / 68 / 64 / 8) * 8;
                ShortCteCache::Sector(SectorCache::new(lines, 8, 32))
            }
        };
        let long_lines = (cfg.cache_bytes * 8 / 12 / 8 / 8) * 8;
        let long_cache = SetAssocCache::new(CacheConfig::lru(long_lines, 8, 1));

        NaiveDynamic {
            cfg,
            store,
            layout,
            groups,
            short_cache,
            long_cache,
            short_cte,
            stats: McStats::default(),
            probe: ProbeHandle::disabled(),
            requests_seen: 0,
            rotate: seed,
        }
    }

    /// Shared-store access for tests and harnesses.
    pub fn store(&self) -> &CompressedStore {
        &self.store
    }

    fn is_ml0(&self, page: PageId) -> bool {
        self.short_cte[page.index() as usize] != self.groups.invalid()
    }

    /// Fetch a unified CTE block from DRAM (read) and return completion.
    fn fetch_unified(&mut self, now: Time, page: PageId, dram: &mut Dram) -> Time {
        dram.access(
            now,
            self.layout.unified_block_addr(page.index()),
            DramOp::Read,
            RequestClass::CteFetch,
        )
    }

    fn translate(&mut self, now: Time, page: PageId, dram: &mut Dram) -> (Time, TranslationPath) {
        if self.is_ml0(page) {
            // Short cache line covers the 8 pages of one unified block.
            let key = page.index() / 8;
            let hit = self.short_cache.access(key);
            self.probe.emit_cte(&CteRecord {
                kind: CteBlockKind::Pregathered,
                op: CteOp::Lookup {
                    hit,
                    fill_on_miss: true,
                },
                key,
            });
            if hit {
                self.stats.cte_hits_pregathered.incr();
                return (now + CTE_CACHE_HIT_LATENCY, TranslationPath::ShortCteHit);
            }
            self.stats.cte_misses.incr();
            let done = self.fetch_unified(now, page, dram);
            self.short_cache.fill(key);
            (done, TranslationPath::CteMiss)
        } else {
            let key = page.index();
            let hit = self.long_cache.access(key);
            // Shadow key is unified-block granular so the counterfactual
            // single cache has the same per-line reach as DyLeCT/TMCC.
            self.probe.emit_cte(&CteRecord {
                kind: CteBlockKind::Unified,
                op: CteOp::Lookup {
                    hit,
                    fill_on_miss: true,
                },
                key: NAIVE_LONG_KEY_TAG | (key / 8),
            });
            if hit {
                self.stats.cte_hits_unified.incr();
                return (now + CTE_CACHE_HIT_LATENCY, TranslationPath::LongCteHit);
            }
            self.stats.cte_misses.incr();
            let done = self.fetch_unified(now, page, dram);
            self.long_cache.fill(key, false, ());
            (done, TranslationPath::CteMiss)
        }
    }

    /// Direct ML2→ML0 expansion with displacement (the double page
    /// movement of §IV-A1). Returns the time the expanded data is usable.
    fn expand_to_group(&mut self, now: Time, page: PageId, dram: &mut Dram) -> Time {
        let slots: Vec<DramPageId> = self.groups.slots(page).collect();

        // Free slot: single movement.
        for (i, &s) in slots.iter().enumerate() {
            if self.store.free.take_specific_page(s) {
                self.store.free.add_page(s); // expand() draws from the pool
                return self.finish_expand_into(now, page, s, i as u8, dram);
            }
        }

        // Displace an occupant (round-robin over slots for determinism).
        self.rotate = self.rotate.wrapping_add(1);
        for k in 0..slots.len() {
            let i = (self.rotate as usize + k) % slots.len();
            let s = slots[i];
            match self.store.dir.dram_use(s) {
                DramUse::Uncompressed(q) => {
                    // Try q's own other slots; otherwise compress q.
                    let alt = self
                        .groups
                        .slots(q)
                        .enumerate()
                        .find(|&(_, a)| self.store.free.take_specific_page(a));
                    let t = if let Some((j, a)) = alt {
                        let t =
                            self.store
                                .move_uncompressed(dram, now, q, a, RequestClass::Migration);
                        self.short_cte[q.index() as usize] = j as u8;
                        t
                    } else {
                        self.short_cte[q.index() as usize] = self.groups.invalid();
                        self.store.recency.remove(q);
                        self.store.compact_page(dram, now, q)
                    };
                    self.stats.displacements.incr();
                    self.probe.emit(t, McEvent::Displacement, q.index());
                    return self.finish_expand_into(t, page, s, i as u8, dram);
                }
                DramUse::Pool => {
                    let Some(t) = self.vacate_pool_page(now, s, dram) else {
                        continue;
                    };
                    self.store.free.add_page(s);
                    return self.finish_expand_into(t, page, s, i as u8, dram);
                }
                DramUse::Unassigned => {}
            }
        }
        // Pathological: nothing displaceable; fall back to a plain ML1-style
        // expansion so forward progress is kept (page stays long-CTE).
        let (_, ready) = self.store.expand(dram, now, page, RequestClass::Migration);
        ready
    }

    fn vacate_pool_page(&mut self, now: Time, slot: DramPageId, dram: &mut Dram) -> Option<Time> {
        let residents: Vec<PageId> = self.store.dir.compressed_pages_in(slot).to_vec();
        let mut t = now;
        for q in residents {
            let Some(PageState::Compressed(span)) = self.store.dir.state(q) else {
                unreachable!("resident list says q is compressed here");
            };
            let new_span = self.store.free.alloc_span_excluding(span.len, slot)?;
            let r = transfer::read_span(dram, t, span, RequestClass::Migration);
            t = transfer::write_span(dram, r, new_span, RequestClass::Migration);
            self.store.dir.place_compressed(q, new_span);
            self.store.free.free_span(span);
            self.stats.displacements.incr();
            self.probe.emit(t, McEvent::Displacement, q.index());
        }
        self.store.free.take_specific_page(slot).then_some(t)
    }

    /// Expands `page` specifically into slot `s` (which must be free in the
    /// pool sense) and records its short CTE.
    fn finish_expand_into(
        &mut self,
        now: Time,
        page: PageId,
        s: DramPageId,
        slot_idx: u8,
        dram: &mut Dram,
    ) -> Time {
        // `expand` takes an arbitrary free page; steer it by temporarily
        // making `s` the only page we hand back afterwards.
        let (got, ready) = self.store.expand(dram, now, page, RequestClass::Migration);
        if got != s {
            // Move into the intended slot (bookkeeping swap, no extra
            // traffic billed: the write already happened once; real hardware
            // would have written straight to `s`).
            self.store.dir.detach(page);
            self.store.free.add_page(got);
            let taken = self.store.free.take_specific_page(s);
            debug_assert!(taken, "slot was reserved by caller");
            self.store.dir.place_uncompressed(page, s);
            self.store.recency.touch(page);
        }
        self.short_cte[page.index() as usize] = slot_idx;
        self.stats.expansions.incr();
        self.probe.emit(ready, McEvent::Expansion, page.index());
        ready
    }

    fn maintain_free(&mut self, now: Time, target: u64, dram: &mut Dram) {
        let mut t = now;
        let mut guard = 128;
        while (self.store.free.free_page_count() as u64) < target && guard > 0 {
            guard -= 1;
            let Some(victim) = self.store.recency.tail() else {
                break;
            };
            self.short_cte[victim.index() as usize] = self.groups.invalid();
            t = self.store.compact_page(dram, t, victim);
            self.stats.compactions.incr();
            self.probe.emit(t, McEvent::Compaction, victim.index());
        }
    }
}

impl MemoryScheme for NaiveDynamic {
    fn name(&self) -> &'static str {
        "naive-dynamic"
    }

    fn access(&mut self, now: Time, addr: PhysAddr, is_write: bool, dram: &mut Dram) -> McResponse {
        let page = addr.page();
        debug_assert!(page.index() < self.cfg.os_pages, "address out of range");
        self.stats.requests.incr();
        self.requests_seen += 1;
        if self.requests_seen.is_multiple_of(TOUCH_PERIOD) && !self.store.is_compressed(page) {
            self.store.recency.touch(page);
        }

        let level = if self.is_ml0(page) {
            MemLevel::Ml0
        } else if self.store.is_compressed(page) {
            MemLevel::Ml2
        } else {
            MemLevel::Ml1
        };
        let (t_translated, path) = self.translate(now, page, dram);

        let expanded = if self.store.is_compressed(page) {
            if self.store.free.free_page_count() < 2 {
                self.maintain_free(t_translated, 2, dram);
            }
            Some(self.expand_to_group(t_translated, page, dram))
        } else {
            None
        };
        let t_data_start = expanded.unwrap_or(t_translated);

        let Some(PageState::Uncompressed(dpage)) = self.store.dir.state(page) else {
            unreachable!("page uncompressed after expansion");
        };
        let machine = dpage.base_addr().offset(addr.page_offset());
        let (op, class) = if is_write {
            (DramOp::Write, RequestClass::Writeback)
        } else {
            (DramOp::Read, RequestClass::Demand)
        };
        let detail = dram.access_detailed(t_data_start, machine.block_base(), op, class);
        let data_ready = detail.done;

        if expanded.is_some() {
            self.maintain_free(data_ready, self.store.free_target_pages(), dram);
        }

        let overhead = t_data_start - now;
        self.stats
            .translation_latency
            .record_time_ns(t_translated.saturating_sub(now));
        self.stats.overhead_latency.record_time_ns(overhead);
        let (decompression, migration) =
            AccessBreakdown::split_expansion(t_data_start.saturating_sub(t_translated), PAGE_BYTES);
        McResponse {
            data_ready,
            overhead,
            breakdown: AccessBreakdown {
                path,
                level,
                translation: t_translated.saturating_sub(now),
                decompression,
                migration,
                ..AccessBreakdown::default()
            }
            .with_dram(detail),
        }
    }

    fn apply_pressure(&mut self, now: Time, extra_free_pages: u64, dram: &mut Dram) {
        let target = self
            .store
            .free_target_pages()
            .saturating_add(extra_free_pages);
        self.maintain_free(now, target, dram);
    }

    fn set_probe(&mut self, probe: ProbeHandle) {
        self.probe = probe;
    }

    fn cte_cache_geometry(&self) -> Option<CteCacheGeometry> {
        // The counterfactual "single cache" of the naive design's combined
        // SRAM budget, with standard 64 B CTE blocks.
        Some(CteCacheGeometry {
            capacity_bytes: 2 * self.cfg.cache_bytes,
            ways: 8,
            block_bytes: 64,
            group_size: self.groups.group_size(),
            num_groups: self.groups.num_groups(),
        })
    }

    fn stats(&self) -> &McStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = McStats::default();
        self.short_cache.reset_stats();
        self.long_cache.reset_stats();
    }

    fn occupancy(&self) -> Occupancy {
        let (unc, comp) = self.store.dir.census();
        let ml0 = self
            .short_cte
            .iter()
            .filter(|&&s| s != self.groups.invalid())
            .count() as u64;
        Occupancy {
            ml0_pages: ml0,
            ml1_pages: unc - ml0.min(unc),
            ml2_pages: comp,
            free_pages: self.store.free.free_page_count() as u64,
            free_bytes: self.store.free.free_bytes(),
        }
    }

    // `cfg`, `layout`, and `groups` are construction state; the probe is
    // reinstalled by the owner after restore.
    fn write_snapshot(&self, w: &mut SnapWriter) {
        self.store.write_snapshot(w);
        self.short_cache.write_snapshot(w);
        self.long_cache.write_snapshot(w);
        w.seq(self.short_cte.len());
        w.bytes(&self.short_cte);
        self.stats.write_snapshot(w);
        w.u64(self.requests_seen);
        w.u64(self.rotate);
    }

    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.store.restore_snapshot(r)?;
        self.short_cache.restore_snapshot(r)?;
        self.long_cache.restore_snapshot(r)?;
        r.fixed_seq(self.short_cte.len(), "short CTE table size")?;
        let n = self.short_cte.len();
        self.short_cte.copy_from_slice(r.bytes(n)?);
        let invalid = self.groups.invalid();
        for &s in &self.short_cte {
            if s != invalid && (s as u64) >= self.cfg.group_size {
                return Err(SnapError::Corrupt("short CTE slot out of range"));
            }
        }
        self.stats.restore_snapshot(r)?;
        self.requests_seen = r.u64()?;
        self.rotate = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dylect_dram::DramConfig;
    use dylect_sim_core::PAGE_BYTES;

    fn profile() -> CompressibilityProfile {
        CompressibilityProfile::with_mean_ratio("t", 3.0)
    }

    fn setup(os_pages: u64) -> (NaiveDynamic, Dram) {
        let dram = Dram::new(DramConfig::paper(1 << 28, 8));
        let n = NaiveDynamic::new(NaiveDynamicConfig::paper(os_pages), &dram, profile(), 3);
        (n, dram)
    }

    fn addr(p: u64) -> PhysAddr {
        PhysAddr::new(p * PAGE_BYTES)
    }

    #[test]
    fn initial_placement_is_group_consistent() {
        let (n, _) = setup(80_000);
        for p in 0..80_000u64 {
            let page = PageId::new(p);
            if let Some(PageState::Uncompressed(d)) = n.store().dir.state(page) {
                let slot = n.short_cte[p as usize];
                assert_ne!(
                    slot,
                    n.groups.invalid(),
                    "uncompressed page {p} lacks short CTE"
                );
                assert_eq!(
                    n.groups.dram_page(page, slot),
                    d,
                    "page {p} short CTE stale"
                );
            } else {
                assert_eq!(n.short_cte[p as usize], n.groups.invalid());
            }
        }
    }

    #[test]
    fn rigid_placement_wastes_capacity() {
        // Compared to DyLeCT's packing, the naive fix-up compresses extra
        // pages whose group slots were taken (Figure 1b's wasted space).
        let (n, _) = setup(80_000);
        let (_, comp_naive) = n.store().dir.census();
        let dram = Dram::new(DramConfig::paper(1 << 28, 8));
        let d = crate::Dylect::new(crate::DylectConfig::paper(80_000), &dram, profile(), 3);
        let (_, comp_dylect) = d.store().dir.census();
        assert!(
            comp_naive >= comp_dylect,
            "naive {comp_naive} vs dylect {comp_dylect}"
        );
    }

    #[test]
    fn expansion_goes_directly_to_group() {
        let (mut n, mut dram) = setup(80_000);
        let p = (0..80_000)
            .find(|&p| n.store().is_compressed(PageId::new(p)))
            .expect("compression pressure");
        n.access(Time::ZERO, addr(p), false, &mut dram);
        let page = PageId::new(p);
        assert!(!n.store().is_compressed(page));
        let slot = n.short_cte[p as usize];
        if slot != n.groups.invalid() {
            let Some(PageState::Uncompressed(d)) = n.store().dir.state(page) else {
                panic!("uncompressed after expansion");
            };
            assert_eq!(n.groups.dram_page(page, slot), d);
        }
        assert_eq!(n.stats().expansions.get(), n.stats().expansions.get());
    }

    #[test]
    fn expansions_displace_under_pressure() {
        let (mut n, mut dram) = setup(80_000);
        let compressed: Vec<u64> = (0..80_000)
            .filter(|&p| n.store().is_compressed(PageId::new(p)))
            .take(400)
            .collect();
        let mut t = Time::ZERO;
        for &p in &compressed {
            let r = n.access(t, addr(p), false, &mut dram);
            t = r.data_ready;
        }
        assert!(
            n.stats().displacements.get() > 0,
            "high occupancy should force double page movement"
        );
    }

    #[test]
    fn churn_preserves_store_invariants() {
        let (mut n, mut dram) = setup(80_000);
        let data_pages = n.layout.data_pages();
        let mut t = Time::ZERO;
        for i in 0..2000u64 {
            let p = (i * 6151) % 80_000;
            let r = n.access(t, addr(p), i % 9 == 0, &mut dram);
            t = r.data_ready;
        }
        n.store().check_invariants(data_pages);
        // Short-CTE mirror consistency.
        for p in 0..80_000u64 {
            let page = PageId::new(p);
            let slot = n.short_cte[p as usize];
            if slot != n.groups.invalid() {
                assert_eq!(
                    n.store().dir.state(page),
                    Some(PageState::Uncompressed(n.groups.dram_page(page, slot))),
                    "page {p}"
                );
            }
        }
    }

    #[test]
    fn option_b_sector_cache_runs_and_underperforms_warm_gathered() {
        // Option B's slow sector warmup should never beat Option A's hit
        // rate on a bursty stream at equal SRAM budget.
        let dram0 = Dram::new(DramConfig::paper(1 << 28, 8));
        let profile_a = profile();
        let mut a = NaiveDynamic::new(NaiveDynamicConfig::paper(80_000), &dram0, profile_a, 3);
        let cfg_b = NaiveDynamicConfig {
            short_cache: ShortCacheOption::SectorB,
            ..NaiveDynamicConfig::paper(80_000)
        };
        let mut b = NaiveDynamic::new(cfg_b, &dram0, profile(), 3);
        let mut dram_a = Dram::new(DramConfig::paper(1 << 28, 8));
        let mut dram_b = Dram::new(DramConfig::paper(1 << 28, 8));
        let mut ta = Time::ZERO;
        let mut tb = Time::ZERO;
        for i in 0..30_000u64 {
            // A zipf-ish revisit pattern over uncompressed pages.
            let p = (i * i * 7919) % 80_000;
            ta = a.access(ta, addr(p), false, &mut dram_a).data_ready;
            tb = b.access(tb, addr(p), false, &mut dram_b).data_ready;
        }
        let hit = |n: &NaiveDynamic| n.stats().cte_hit_rate();
        assert!(
            hit(&b) <= hit(&a) + 0.02,
            "B {:.3} vs A {:.3}",
            hit(&b),
            hit(&a)
        );
    }

    #[test]
    fn split_caches_report_their_hits() {
        let (mut n, mut dram) = setup(80_000);
        let p = (0..80_000)
            .find(|&p| !n.store().is_compressed(PageId::new(p)))
            .unwrap();
        let r1 = n.access(Time::ZERO, addr(p), false, &mut dram);
        n.access(r1.data_ready, addr(p), false, &mut dram);
        assert_eq!(n.stats().cte_misses.get(), 1);
        assert_eq!(n.stats().cte_hits_pregathered.get(), 1, "short-cache hit");
    }
}
