//! Picosecond-resolution simulation time.
//!
//! A single [`Time`] type serves as both instant and duration, mirroring how
//! architectural simulators treat time as a monotonically increasing scalar.
//! Picoseconds are fine enough to express DDR4 bus clocks (625 ps at
//! DDR4-3200) and CPU clocks (357 ps at 2.8 GHz) without rounding drift, and
//! a `u64` of picoseconds still covers ~213 days of simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, in picoseconds.
///
/// # Example
///
/// ```
/// use dylect_sim_core::Time;
///
/// let t_cl = Time::from_ns(13.75);
/// let later = Time::ZERO + t_cl * 3;
/// assert_eq!(later.as_ns(), 41.25);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The origin of simulated time (also the zero duration).
    pub const ZERO: Time = Time(0);
    /// The maximum representable time; useful as an "infinite" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a time from (possibly fractional) nanoseconds, rounding to the
    /// nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "invalid nanosecond value: {ns}"
        );
        Time((ns * 1000.0).round() as u64)
    }

    /// Creates a time from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Returns the raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the time in nanoseconds as a float (lossless for < 2^53 ps).
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Returns the time in seconds as a float.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Returns the larger of `self` and `other`.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Returns the smaller of `self` and `other`.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Subtraction that clamps at zero instead of panicking.
    #[inline]
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }

    /// Addition that clamps at [`Time::MAX`] instead of wrapping.
    #[inline]
    pub fn saturating_add(self, other: Time) -> Time {
        Time(self.0.saturating_add(other.0))
    }

    /// Integer division of one span by another, e.g. to count clock edges.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is [`Time::ZERO`].
    #[inline]
    pub fn div_duration(self, unit: Time) -> u64 {
        assert!(unit.0 != 0, "division by zero duration");
        self.0 / unit.0
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Time({} ps)", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3} us", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} ns", self.0 as f64 / 1e3)
        } else {
            write!(f, "{} ps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_roundtrip() {
        let t = Time::from_ns(13.75);
        assert_eq!(t.as_ps(), 13_750);
        assert_eq!(t.as_ns(), 13.75);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ps(100);
        let b = Time::from_ps(40);
        assert_eq!((a + b).as_ps(), 140);
        assert_eq!((a - b).as_ps(), 60);
        assert_eq!((a * 3).as_ps(), 300);
        assert_eq!((a / 4).as_ps(), 25);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn saturating() {
        let a = Time::from_ps(10);
        let b = Time::from_ps(30);
        assert_eq!(a.saturating_sub(b), Time::ZERO);
        assert_eq!(Time::MAX.saturating_add(a), Time::MAX);
    }

    #[test]
    fn div_duration_counts_edges() {
        let window = Time::from_ns(10.0);
        let tick = Time::from_ps(625);
        assert_eq!(window.div_duration(tick), 16);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Time::from_ps(500).to_string(), "500 ps");
        assert_eq!(Time::from_ns(2.5).to_string(), "2.500 ns");
        assert_eq!(Time::from_us(3).to_string(), "3.000 us");
    }

    #[test]
    fn sum_of_durations() {
        let total: Time = [1u64, 2, 3].iter().map(|&p| Time::from_ps(p)).sum();
        assert_eq!(total.as_ps(), 6);
    }

    #[test]
    #[should_panic(expected = "invalid nanosecond")]
    fn rejects_negative_ns() {
        let _ = Time::from_ns(-1.0);
    }
}
