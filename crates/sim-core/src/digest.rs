//! `dylect-digest`: the state-digest audit trail.
//!
//! Every determinism guarantee this workspace makes — batched ≡ per-op,
//! restore(n)+k ≡ n+k, prof-on ≡ prof-off — is pinned as byte-identical
//! *final* output, which says **that** two runs diverged but not **where**.
//! This module adds the "where": a rolling 64-bit digest of every mutable
//! state component, captured at fixed op-count windows by reusing the
//! [`crate::snap`] wire format as the hash traversal (no second
//! serializer — the digest of a component is the FNV-1a hash of exactly
//! the bytes its `Snapshot` impl already emits).
//!
//! Design constraints (mirroring [`crate::prof`]):
//!
//! - **Zero cost when off.** The only cost at a digest site with
//!   `DYLECT_DIGEST` unset is one relaxed atomic load.
//! - **On ≡ off.** Digests are write-only observability: nothing computed
//!   here may feed back into simulated state, reports, or the standard
//!   telemetry exports. `tests/determinism.rs` pins this byte-identically.
//! - **<2% overhead when on.** State is hashed once per digest window
//!   ([`DEFAULT_WINDOW_OPS`] retired ops by default), not per op, so the
//!   full-state serialization cost amortizes to well under a nanosecond
//!   per op. `DYLECT_DIGEST=<ops>` selects a finer window when bisection
//!   resolution matters more than throughput.
//!
//! The companion `DYLECT_DIGEST_PERTURB` hook flips one counter at a
//! chosen op boundary so `tools/verify.sh` can prove end-to-end that
//! `dylect-stats bisect` localizes an injected divergence to the exact
//! window, op index, and component.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::snap::{SnapWriter, Snapshot};

/// Default digest window length in retired ops. One full-state capture
/// costs on the order of a millisecond (it serializes every scheme's
/// directory), so the window must be long enough to amortize that under
/// the 2% overhead budget: at 2^20 ops per window the capture cost is
/// roughly 1% of execution. Tests and bisection harnesses that want op-
/// scale resolution shrink the window explicitly (`DYLECT_DIGEST=4096`
/// or [`crate::digest::set_window_ops`]).
pub const DEFAULT_WINDOW_OPS: u64 = 1 << 20;

/// Every window length must divide into the execute paths' 256-op drain
/// batches, so batched and per-op execution cross window boundaries at
/// identical points.
pub const WINDOW_ALIGN_OPS: u64 = 256;

static WINDOW: AtomicU64 = AtomicU64::new(DEFAULT_WINDOW_OPS);

/// The process-global digest window length (new `System`s snapshot this
/// at construction).
pub fn window_ops() -> u64 {
    WINDOW.load(Ordering::Relaxed)
}

/// Sets the process-global digest window length.
///
/// # Panics
///
/// Panics unless `ops` is a positive multiple of [`WINDOW_ALIGN_OPS`].
pub fn set_window_ops(ops: u64) {
    assert!(
        ops > 0 && ops.is_multiple_of(WINDOW_ALIGN_OPS),
        "digest window must be a positive multiple of {WINDOW_ALIGN_OPS}, got {ops}"
    );
    WINDOW.store(ops, Ordering::Relaxed);
}

/// Streaming FNV-1a 64-bit hasher (same constants as `kv::fingerprint64`,
/// kept byte-at-a-time so digests are independent of chunking).
#[derive(Clone, Debug)]
pub struct Hasher {
    state: u64,
}

impl Hasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Hasher {
            state: Self::OFFSET,
        }
    }

    /// Folds `bytes` into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Hashes whatever `f` writes into a scratch [`SnapWriter`] — the bridge
/// between the snapshot traversal and the digest.
pub fn hash_with(f: impl FnOnce(&mut SnapWriter)) -> u64 {
    let mut w = SnapWriter::new();
    f(&mut w);
    let mut h = Hasher::new();
    h.write(&w.into_bytes());
    h.finish()
}

/// Digest of one component's snapshot bytes.
pub fn hash_snapshot(s: &impl Snapshot) -> u64 {
    hash_with(|w| s.write_snapshot(w))
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is digest capture on? One relaxed load: this is the entire cost of a
/// digest site when capture is disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns digest capture on or off programmatically (benches and tests;
/// binaries go through [`init_from_env`]).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Strict `DYLECT_DIGEST` parser. Unset, empty, `0`, or `false` means
/// off; `1`/`true` means on at [`DEFAULT_WINDOW_OPS`]; a decimal op
/// count that is a positive multiple of [`WINDOW_ALIGN_OPS`] means on at
/// that window length (so bisection harnesses can trade throughput for
/// resolution). Anything else is a usage error (same spirit as
/// `DYLECT_PROF`).
pub fn parse_digest(raw: Option<&str>) -> Result<Option<u64>, String> {
    let usage = |got: &str| {
        format!(
            "DYLECT_DIGEST must be unset, 0, false, 1, true, or a window \
             length in ops (a positive multiple of {WINDOW_ALIGN_OPS}); got {got:?}"
        )
    };
    match raw {
        None => Ok(None),
        Some(s) => match s.trim() {
            "" | "0" | "false" => Ok(None),
            "1" | "true" => Ok(Some(DEFAULT_WINDOW_OPS)),
            other => match other.parse::<u64>() {
                Ok(w) if w > 0 && w.is_multiple_of(WINDOW_ALIGN_OPS) => Ok(Some(w)),
                _ => Err(usage(other)),
            },
        },
    }
}

/// Reads `DYLECT_DIGEST` without applying it: `None` off, `Some(window)`
/// on.
pub fn digest_from_env() -> Result<Option<u64>, String> {
    parse_digest(std::env::var("DYLECT_DIGEST").ok().as_deref())
}

/// Strict `DYLECT_DIGEST_PERTURB` parser: unset or empty means no
/// perturbation, otherwise a decimal op index at which the test-only
/// perturbation hook fires. The armed index is *per system*, not
/// process-global — the consumer (a bisect harness) parses the env var
/// here and arms each `System` it builds explicitly, so a test arming a
/// perturbation can never contaminate an unrelated concurrent run.
pub fn parse_perturb(raw: Option<&str>) -> Result<Option<u64>, String> {
    match raw {
        None => Ok(None),
        Some(s) => match s.trim() {
            "" => Ok(None),
            t => t.parse::<u64>().map(Some).map_err(|_| {
                format!("DYLECT_DIGEST_PERTURB must be unset or a non-negative op index; got {t:?}")
            }),
        },
    }
}

/// Reads `DYLECT_DIGEST_PERTURB` without applying it (arming is per
/// system; see [`parse_perturb`]).
pub fn perturb_from_env() -> Result<Option<u64>, String> {
    parse_perturb(std::env::var("DYLECT_DIGEST_PERTURB").ok().as_deref())
}

/// Reads `DYLECT_DIGEST` and applies it (the enabled switch and, when
/// on, the window length), and validates `DYLECT_DIGEST_PERTURB` (a typo
/// must fail loudly even though arming is per system); returns the
/// enabled state so callers can branch.
pub fn init_from_env() -> Result<bool, String> {
    let window = digest_from_env()?;
    if let Some(w) = window {
        set_window_ops(w);
    }
    set_enabled(window.is_some());
    perturb_from_env()?;
    Ok(window.is_some())
}

/// One digest capture: per-component 64-bit state digests at a window
/// boundary (or, during bisection replay, after a single op).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DigestRecord {
    /// Window index (ops_retired / the capturing system's digest window
    /// length at capture time).
    pub window: u64,
    /// For per-op bisection records: the op index this digest follows.
    /// `None` for ordinary window-boundary records.
    pub op: Option<u64>,
    /// Total ops retired when the digest was captured.
    pub ops_retired: u64,
    /// Per-core architectural + timing state (registers, clocks, stats).
    pub core: Vec<u64>,
    /// All cores' TLB state, folded.
    pub tlb: u64,
    /// Shared cache hierarchy (L3 tags/state + shared cache stats).
    pub cache: u64,
    /// Pending writeback FIFOs across every memory controller.
    pub wb_fifos: u64,
    /// DRAM scheduler state across every memory controller.
    pub dram: u64,
    /// Compression-scheme directory state across every memory controller.
    pub scheme: u64,
    /// Compression occupancy / free-space accounting.
    pub compression: u64,
    /// Deterministic telemetry state (0 when telemetry is off).
    pub telemetry: u64,
}

impl DigestRecord {
    /// Named scalar components in canonical order (per-core entries are
    /// `core0`, `core1`, …). This is the schema of the JSONL row and the
    /// order [`first_difference`] scans.
    pub fn components(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(self.core.len() + 7);
        for (i, &h) in self.core.iter().enumerate() {
            out.push((format!("core{i}"), h));
        }
        for (name, h) in [
            ("tlb", self.tlb),
            ("cache", self.cache),
            ("wb_fifos", self.wb_fifos),
            ("dram", self.dram),
            ("scheme", self.scheme),
            ("compression", self.compression),
            ("telemetry", self.telemetry),
        ] {
            out.push((name.to_owned(), h));
        }
        out
    }

    /// Renders the record as one flat-JSON line (the `.digest.jsonl`
    /// format). Hashes travel as fixed-width hex strings — they are
    /// identifiers, not quantities, and must survive f64-based JSON
    /// parsers bit-exactly.
    pub fn to_jsonl_line(&self) -> String {
        let mut line = String::with_capacity(64 + self.core.len() * 32);
        let kind = if self.op.is_some() { "op" } else { "window" };
        line.push_str(&format!(
            "{{\"digest\": \"{kind}\", \"window\": {}, ",
            self.window
        ));
        if let Some(op) = self.op {
            line.push_str(&format!("\"op\": {op}, "));
        }
        line.push_str(&format!("\"ops_retired\": {}", self.ops_retired));
        for (name, h) in self.components() {
            line.push_str(&format!(", \"{name}\": \"{h:016x}\""));
        }
        line.push('}');
        line
    }
}

/// The first component (in [`DigestRecord::components`] order) whose
/// digest differs between two captures of the same window/op, or `None`
/// if they agree everywhere.
pub fn first_difference(a: &DigestRecord, b: &DigestRecord) -> Option<String> {
    let (ca, cb) = (a.components(), b.components());
    if ca.len() != cb.len() {
        return Some("core-count".to_owned());
    }
    ca.into_iter()
        .zip(cb)
        .find(|((_, ha), (_, hb))| ha != hb)
        .map(|((name, _), _)| name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Digest state is process-global; tests that toggle it serialize
    /// here so they cannot observe each other's windows.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn record() -> DigestRecord {
        DigestRecord {
            window: 3,
            op: None,
            ops_retired: 12_288,
            core: vec![0x11, 0x22],
            tlb: 0x33,
            cache: 0x44,
            wb_fifos: 0x55,
            dram: 0x66,
            scheme: 0x77,
            compression: 0x88,
            telemetry: 0,
        }
    }

    #[test]
    fn hasher_matches_kv_fingerprint_on_utf8() {
        let mut h = Hasher::new();
        h.write("dylect".as_bytes());
        assert_eq!(h.finish(), crate::kv::fingerprint64("dylect"));
    }

    #[test]
    fn hashing_is_chunking_independent_and_input_sensitive() {
        let mut a = Hasher::new();
        a.write(b"ab");
        a.write(b"cd");
        let mut b = Hasher::new();
        b.write(b"abcd");
        assert_eq!(a.finish(), b.finish());
        let mut c = Hasher::new();
        c.write(b"abce");
        assert_ne!(b.finish(), c.finish());
    }

    #[test]
    fn hash_with_hashes_the_snapshot_bytes() {
        let h = hash_with(|w| w.u64(0xDEAD_BEEF));
        let mut expect = Hasher::new();
        expect.write(&0xDEAD_BEEFu64.to_le_bytes());
        assert_eq!(h, expect.finish());
        // The unit snapshot is the hash of zero bytes: the offset basis.
        assert_eq!(hash_snapshot(&()), Hasher::new().finish());
    }

    #[test]
    fn parse_digest_accepts_the_strict_grammar_only() {
        assert_eq!(parse_digest(None), Ok(None));
        assert_eq!(parse_digest(Some("")), Ok(None));
        assert_eq!(parse_digest(Some("0")), Ok(None));
        assert_eq!(parse_digest(Some("false")), Ok(None));
        assert_eq!(parse_digest(Some("1")), Ok(Some(DEFAULT_WINDOW_OPS)));
        assert_eq!(parse_digest(Some("true")), Ok(Some(DEFAULT_WINDOW_OPS)));
        assert_eq!(parse_digest(Some(" 1 ")), Ok(Some(DEFAULT_WINDOW_OPS)));
        assert_eq!(parse_digest(Some("4096")), Ok(Some(4096)));
        assert_eq!(parse_digest(Some(" 512 ")), Ok(Some(512)));
        // 2 parses as a number but is not 256-aligned; neither is 100.
        for bad in ["yes", "2", "100", "on", "TRUE", "0x1", "-256"] {
            let err = parse_digest(Some(bad)).expect_err(bad);
            assert!(err.contains("DYLECT_DIGEST"), "{err}");
        }
    }

    #[test]
    fn window_length_is_settable_but_must_stay_drain_aligned() {
        let _g = lock();
        assert_eq!(window_ops(), DEFAULT_WINDOW_OPS);
        set_window_ops(4096);
        assert_eq!(window_ops(), 4096);
        set_window_ops(DEFAULT_WINDOW_OPS);
        let err = std::panic::catch_unwind(|| set_window_ops(1000));
        assert!(err.is_err(), "unaligned window lengths must be rejected");
        assert_eq!(window_ops(), DEFAULT_WINDOW_OPS);
    }

    #[test]
    fn parse_perturb_is_unset_or_a_plain_op_index() {
        assert_eq!(parse_perturb(None), Ok(None));
        assert_eq!(parse_perturb(Some("")), Ok(None));
        assert_eq!(parse_perturb(Some("0")), Ok(Some(0)));
        assert_eq!(parse_perturb(Some(" 8192 ")), Ok(Some(8192)));
        for bad in ["-1", "1.5", "0x10", "lots"] {
            let err = parse_perturb(Some(bad)).expect_err(bad);
            assert!(err.contains("DYLECT_DIGEST_PERTURB"), "{err}");
        }
    }

    #[test]
    fn enable_round_trips() {
        let _g = lock();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn jsonl_rows_carry_every_component_as_fixed_width_hex() {
        let rec = record();
        let line = rec.to_jsonl_line();
        assert!(line.starts_with("{\"digest\": \"window\""), "{line}");
        assert!(line.contains("\"window\": 3"), "{line}");
        assert!(line.contains("\"ops_retired\": 12288"), "{line}");
        assert!(line.contains("\"core0\": \"0000000000000011\""), "{line}");
        assert!(line.contains("\"core1\": \"0000000000000022\""), "{line}");
        assert!(
            line.contains("\"telemetry\": \"0000000000000000\""),
            "{line}"
        );
        assert!(!line.contains("\"op\":"), "window rows carry no op field");
        let mut op_rec = rec;
        op_rec.op = Some(12345);
        let op_line = op_rec.to_jsonl_line();
        assert!(op_line.starts_with("{\"digest\": \"op\""), "{op_line}");
        assert!(op_line.contains("\"op\": 12345"), "{op_line}");
    }

    #[test]
    fn first_difference_names_the_earliest_diverging_component() {
        let a = record();
        assert_eq!(first_difference(&a, &a.clone()), None);
        let mut b = a.clone();
        b.cache ^= 1;
        b.dram ^= 1;
        assert_eq!(first_difference(&a, &b), Some("cache".to_owned()));
        let mut c = a.clone();
        c.core[1] ^= 1;
        assert_eq!(first_difference(&a, &c), Some("core1".to_owned()));
        let mut d = a.clone();
        d.core.pop();
        assert_eq!(first_difference(&a, &d), Some("core-count".to_owned()));
    }
}
