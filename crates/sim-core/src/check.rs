//! A minimal property-based testing harness.
//!
//! The workspace builds fully offline, so the property tests that used to
//! run under the `proptest` crate now run on this ~100-line harness driven
//! by the simulator's own deterministic [`Rng`]. There is no shrinking:
//! every case is derived from a reportable seed, and a failure prints the
//! seed so the exact case can be replayed with
//! `DYLECT_CHECK_SEED=<seed> cargo test`.
//!
//! # Example
//!
//! ```
//! use dylect_sim_core::check::forall;
//!
//! forall("addition commutes", 64, |g| {
//!     let (a, b) = (g.u64_below(1 << 30), g.u64_below(1 << 30));
//!     if a + b != b + a {
//!         return Err(format!("{a} + {b}"));
//!     }
//!     Ok(())
//! });
//! ```

use crate::rng::{hash2, Rng};

/// Number of cases per property when the caller does not override it.
pub const DEFAULT_CASES: u32 = 256;

/// A source of random test inputs for one property case.
pub struct Gen {
    rng: Rng,
}

impl Gen {
    /// Returns uniform random 64 bits.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Returns a uniform value in `[0, bound)`; `bound` must be positive.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        self.rng.next_below(bound)
    }

    /// Returns a uniform value in `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.range_inclusive(lo, hi)
    }

    /// Returns a uniform float in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.next_f64() * (hi - lo)
    }

    /// Returns a uniform bool.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// Returns a vector whose length is uniform in `[min_len, max_len]`,
    /// with elements drawn by `f`.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.range(min_len as u64, max_len as u64) as usize;
        (0..len).map(|_| f(self)).collect()
    }
}

/// Runs `prop` against `cases` generated inputs, panicking with the
/// failing seed on the first counterexample.
///
/// The base seed is fixed (reproducible CI) unless `DYLECT_CHECK_SEED` is
/// set, which both replays a reported failure and lets a soak run explore
/// fresh cases.
pub fn forall(name: &str, cases: u32, prop: impl Fn(&mut Gen) -> Result<(), String>) {
    let (base, replay) = match std::env::var("DYLECT_CHECK_SEED") {
        Ok(s) => {
            let seed = parse_seed(&s)
                .unwrap_or_else(|| panic!("DYLECT_CHECK_SEED={s:?} is not a (hex) integer"));
            (seed, true)
        }
        Err(_) => (0x00D1_1EC7_u64, false),
    };
    // Under replay, case 0 is exactly the reported failure.
    let cases = if replay { 1 } else { cases.max(1) };
    for case in 0..cases {
        let seed = if replay {
            base
        } else {
            hash2(base, case as u64)
        };
        let mut g = Gen {
            rng: Rng::new(seed),
        };
        if let Err(msg) = prop(&mut g) {
            panic!(
                "property `{name}` failed on case {case}/{cases}: {msg}\n\
                 replay with: DYLECT_CHECK_SEED={seed:#x} cargo test"
            );
        }
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Returns `Err` from the enclosing property when a condition fails,
/// mirroring `proptest`'s `prop_assert!`.
#[macro_export]
macro_rules! prop_ensure {
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
}

/// Returns `Err` when two expressions differ, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_ensure_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "{} != {}: {a:?} vs {b:?}",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_a_true_property() {
        forall("u64_below in range", 128, |g| {
            let bound = g.range(1, 1 << 40);
            prop_ensure!(g.u64_below(bound) < bound, "out of range");
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "property `always fails`")]
    fn reports_failures_with_seed() {
        forall("always fails", 16, |g| {
            let x = g.u64();
            Err(format!("saw {x}"))
        });
    }

    #[test]
    fn generators_cover_ranges() {
        forall("generators", 64, |g| {
            let v = g.vec(1, 9, |g| g.f64_in(-1.0, 1.0));
            prop_ensure!((1..=9).contains(&v.len()), "len {}", v.len());
            prop_ensure!(v.iter().all(|x| (-1.0..1.0).contains(x)), "value range");
            let _ = g.bool();
            Ok(())
        });
    }
}
