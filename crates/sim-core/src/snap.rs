//! Versioned, deterministic binary snapshots of simulator state.
//!
//! A snapshot is a hand-rolled little-endian byte stream (no external
//! serialization dependency — the workspace is hermetic) produced by
//! [`Snapshot::write_snapshot`] and consumed by
//! [`Restore::restore_snapshot`]. Restore is *in place*: the caller
//! constructs the object from the same configuration it was built with
//! (immutable, derived state — geometries, layouts, thresholds — is never
//! serialized) and the snapshot overlays only the mutable state on top.
//!
//! Format rules (DESIGN.md "Snapshot format & versioning"):
//!
//! - every integer is little-endian and fixed-width; `f64` travels as its
//!   IEEE-754 bit pattern (bit-exact round trip, no text formatting);
//! - sequences are a `u64` element count followed by the elements;
//! - nothing is ever serialized in `HashMap`/`HashSet` iteration order —
//!   unordered containers are written in sorted key order and any derived
//!   index is rebuilt on restore;
//! - enums travel as a `u8`/`u64` index into an explicitly ordered table
//!   (for probe enums, their `ALL` arrays), never as a discriminant cast;
//! - readers are panic-free: every read is bounds-checked and every
//!   structural mismatch surfaces as a [`SnapError`], so a truncated,
//!   corrupt, or wrong-version snapshot is an error, not UB or a panic.

use std::fmt;

/// First bytes of every top-level snapshot.
pub const SNAP_MAGIC: [u8; 4] = *b"DYSN";
/// Current snapshot format version (bump on any encoding change).
/// v2: the page walker serializes its nested-walk cache and counters.
pub const SNAP_VERSION: u8 = 2;

/// Why a snapshot could not be restored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The stream ended before a read completed.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// The stream does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The stream's format version is not [`SNAP_VERSION`].
    BadVersion {
        /// Version byte found in the stream.
        found: u8,
    },
    /// A value disagrees with the state being restored onto (wrong
    /// configuration, wrong scheme, wrong capacity, …).
    Mismatch(&'static str),
    /// A value is structurally invalid (bad bool, impossible index,
    /// oversized length prefix, …).
    Corrupt(&'static str),
    /// Bytes remained after the top-level object was fully restored.
    TrailingBytes(usize),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "snapshot truncated: needed {needed} bytes, {remaining} left"
                )
            }
            SnapError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (expected {SNAP_VERSION})"
                )
            }
            SnapError::Mismatch(what) => write!(f, "snapshot does not match target: {what}"),
            SnapError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapError::TrailingBytes(n) => write!(f, "{n} trailing bytes after snapshot"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Serializes state via [`Snapshot::write_snapshot`].
pub trait Snapshot {
    /// Appends this object's mutable state to `w`.
    fn write_snapshot(&self, w: &mut SnapWriter);
}

/// Restores state in place via [`Restore::restore_snapshot`].
///
/// On error the target is left in an unspecified (but memory-safe) state;
/// callers discard it rather than continuing a run.
pub trait Restore {
    /// Overlays state read from `r` onto `self`.
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

/// Appends little-endian fields to a growing byte buffer.
#[derive(Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the snapshot bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes raw bytes with no length prefix (caller knows the width).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Writes a sequence length prefix; the caller then writes `len`
    /// elements.
    pub fn seq(&mut self, len: usize) {
        self.u64(len as u64);
    }
}

/// Reads little-endian fields from a snapshot, bounds-checked.
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool out of range")),
        }
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapError> {
        let len = self.seq(1)?;
        std::str::from_utf8(self.take(len)?).map_err(|_| SnapError::Corrupt("invalid UTF-8"))
    }

    /// Reads a sequence length prefix, guarding against lengths that cannot
    /// possibly fit in the remaining bytes (`min_elem_bytes` per element) —
    /// a corrupt prefix fails here instead of driving a huge allocation.
    pub fn seq(&mut self, min_elem_bytes: usize) -> Result<usize, SnapError> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| SnapError::Corrupt("length overflows usize"))?;
        if len
            .checked_mul(min_elem_bytes.max(1))
            .is_none_or(|total| total > self.remaining())
        {
            return Err(SnapError::Corrupt("sequence longer than remaining bytes"));
        }
        Ok(len)
    }

    /// Reads a sequence length prefix and requires it to equal `expected`
    /// (for fixed-capacity state restored in place).
    pub fn fixed_seq(&mut self, expected: usize, what: &'static str) -> Result<(), SnapError> {
        let len = self.u64()?;
        if len != expected as u64 {
            return Err(SnapError::Mismatch(what));
        }
        Ok(())
    }

    /// Requires the stream to be fully consumed.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

impl Snapshot for () {
    fn write_snapshot(&self, _w: &mut SnapWriter) {}
}

impl Restore for () {
    fn restore_snapshot(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

impl Snapshot for crate::time::Time {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.as_ps());
    }
}

impl Restore for crate::time::Time {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        *self = crate::time::Time::from_ps(r.u64()?);
        Ok(())
    }
}

/// Writes the top-level header: magic, version, and a caller-supplied
/// configuration fingerprint.
pub fn write_header(w: &mut SnapWriter, config_fingerprint: u64) {
    w.bytes(&SNAP_MAGIC);
    w.u8(SNAP_VERSION);
    w.u64(config_fingerprint);
}

/// Validates the top-level header against the expected configuration
/// fingerprint.
pub fn read_header(r: &mut SnapReader<'_>, config_fingerprint: u64) -> Result<(), SnapError> {
    if r.bytes(4)? != SNAP_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = r.u8()?;
    if version != SNAP_VERSION {
        return Err(SnapError::BadVersion { found: version });
    }
    if r.u64()? != config_fingerprint {
        return Err(SnapError::Mismatch("configuration fingerprint"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(-42);
        w.f64(-0.1);
        w.bool(true);
        w.bool(false);
        w.str("hello");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hello");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = SnapWriter::new();
        w.u64(123);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert!(matches!(r.u64(), Err(SnapError::Truncated { .. })));
        }
    }

    #[test]
    fn bad_bool_rejected() {
        let mut r = SnapReader::new(&[2]);
        assert_eq!(r.bool(), Err(SnapError::Corrupt("bool out of range")));
    }

    #[test]
    fn oversized_sequence_rejected() {
        let mut w = SnapWriter::new();
        w.u64(u64::MAX); // length prefix far beyond the stream
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.seq(8), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn fixed_seq_rejects_capacity_mismatch() {
        let mut w = SnapWriter::new();
        w.seq(3);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.fixed_seq(4, "cap"), Err(SnapError::Mismatch("cap")));
    }

    #[test]
    fn header_round_trip_and_rejections() {
        let mut w = SnapWriter::new();
        write_header(&mut w, 0xABCD);
        let mut bytes = w.into_bytes();
        read_header(&mut SnapReader::new(&bytes), 0xABCD).unwrap();
        assert_eq!(
            read_header(&mut SnapReader::new(&bytes), 0x1234),
            Err(SnapError::Mismatch("configuration fingerprint"))
        );
        bytes[4] = SNAP_VERSION + 1;
        assert_eq!(
            read_header(&mut SnapReader::new(&bytes), 0xABCD),
            Err(SnapError::BadVersion {
                found: SNAP_VERSION + 1
            })
        );
        bytes[0] = b'X';
        assert_eq!(
            read_header(&mut SnapReader::new(&bytes), 0xABCD),
            Err(SnapError::BadMagic)
        );
    }

    #[test]
    fn finish_flags_trailing_bytes() {
        let mut w = SnapWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.u8().unwrap();
        assert_eq!(r.finish(), Err(SnapError::TrailingBytes(1)));
    }
}
