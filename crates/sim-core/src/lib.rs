//! Shared vocabulary for the DyLeCT hardware-compressed-memory simulator.
//!
//! This crate defines the primitive types every other crate in the workspace
//! speaks in:
//!
//! - [`Time`]: picosecond-resolution simulation time (both instants and
//!   durations),
//! - address newtypes ([`VirtAddr`], [`PhysAddr`], [`MachineAddr`]) and page
//!   identifiers ([`PageId`], [`DramPageId`]) that keep the simulator's three
//!   address spaces statically distinct,
//! - a deterministic, seedable random-number generator ([`rng::Rng`]) with a
//!   Zipf sampler used by the synthetic workload generators,
//! - lightweight statistics helpers ([`stats`]),
//! - observability probes ([`probe`]) through which memory controllers
//!   announce discrete events (promotions, expansions, …) to the telemetry
//!   subsystem without affecting simulation behavior.
//!
//! # The three address spaces
//!
//! Hardware memory compression introduces a third address space beyond the
//! familiar virtual/physical pair:
//!
//! ```text
//! VirtAddr --(TLB / page tables)--> PhysAddr --(CTEs in the MC)--> MachineAddr
//! ```
//!
//! `PhysAddr` is what the OS believes memory looks like (and can be larger
//! than installed DRAM when compression is active). `MachineAddr` names a
//! location in actual DRAM. Keeping them as separate newtypes means the type
//! checker rejects, e.g., feeding an untranslated physical address to the
//! DRAM timing model.
//!
//! # Example
//!
//! ```
//! use dylect_sim_core::{PhysAddr, Time, PAGE_BYTES};
//!
//! let a = PhysAddr::new(3 * PAGE_BYTES as u64 + 128);
//! assert_eq!(a.page().index(), 3);
//! assert_eq!(a.page_offset(), 128);
//! let t = Time::from_ns(13.75);
//! assert_eq!(t.as_ps(), 13_750);
//! ```

pub mod addr;
pub mod blackbox;
pub mod check;
pub mod digest;
pub mod kv;
pub mod probe;
pub mod prof;
pub mod rng;
pub mod snap;
pub mod stats;
pub mod time;
pub mod trace;

pub use addr::{
    DramPageId, MachineAddr, PageId, PhysAddr, VirtAddr, BLOCKS_PER_PAGE, BLOCK_BYTES,
    HUGE_PAGE_BYTES, PAGES_PER_HUGE_PAGE, PAGE_BYTES,
};
pub use time::Time;
