//! Deterministic pseudo-random number generation.
//!
//! Everything random in the simulator — workload address streams, sampled
//! access counters, replacement tie-breaks — flows from [`Rng`]
//! (xoshiro256\*\*, seeded via SplitMix64). No wall-clock entropy is ever
//! used, so a simulation with a fixed seed is bit-for-bit reproducible.
//!
//! [`hash64`] is exposed separately for *stateless* determinism: properties
//! that must be stable for the lifetime of an object (e.g. the compressed
//! size of a given page) are derived by hashing its identity rather than by
//! drawing from a stream.

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
///
/// Used to derive per-object stable pseudo-random values (e.g. a page's
/// compressibility) from its identity, and to expand seeds.
///
/// # Example
///
/// ```
/// use dylect_sim_core::rng::hash64;
/// assert_eq!(hash64(42), hash64(42));
/// assert_ne!(hash64(42), hash64(43));
/// ```
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combines two 64-bit values into one hash; convenient for keyed lookups
/// like `hash2(seed, page_id)`.
#[inline]
pub fn hash2(a: u64, b: u64) -> u64 {
    hash64(a ^ hash64(b))
}

/// A deterministic xoshiro256\*\* generator.
///
/// # Example
///
/// ```
/// use dylect_sim_core::rng::Rng;
///
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed; any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // Expand the seed through SplitMix64 as the xoshiro authors recommend.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            hash64(x)
        };
        let s = [next(), next(), next(), next()];
        Rng { s }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire's multiply-shift rejection method (unbiased).
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns a uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.next_below(hi - lo + 1)
    }

    /// Forks an independent generator; the fork is deterministic in
    /// `(self state, label)` so parallel components can get decorrelated
    /// streams from one root seed.
    pub fn fork(&mut self, label: u64) -> Rng {
        Rng::new(self.next_u64() ^ hash64(label))
    }
}

impl crate::snap::Snapshot for Rng {
    fn write_snapshot(&self, w: &mut crate::snap::SnapWriter) {
        for &s in &self.s {
            w.u64(s);
        }
    }
}

impl crate::snap::Restore for Rng {
    fn restore_snapshot(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        for s in &mut self.s {
            *s = r.u64()?;
        }
        Ok(())
    }
}

/// A Zipf(θ) sampler over `0..n` using Hörmann's rejection-inversion method.
///
/// Used by workload generators to model skewed page popularity: irregular
/// workloads touch a few pages very often and many pages rarely, which is
/// precisely what makes dynamic short/long CTE selection (DyLeCT's core idea)
/// profitable.
///
/// `theta = 0` degenerates to a uniform distribution; typical workload skews
/// are 0.6–1.1.
///
/// # Example
///
/// ```
/// use dylect_sim_core::rng::{Rng, Zipf};
///
/// let mut rng = Rng::new(1);
/// let zipf = Zipf::new(1000, 0.99);
/// let x = zipf.sample(&mut rng);
/// assert!(x < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    // Precomputed constants of the rejection-inversion scheme.
    h_integral_x1: f64,
    h_integral_n: f64,
    s: f64,
}

impl Zipf {
    /// Creates a sampler over `0..n` with skew `theta >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative/not finite.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "invalid Zipf skew {theta}"
        );
        let h_integral = |x: f64| -> f64 {
            let log_x = x.ln();
            if (1.0 - theta).abs() < 1e-12 {
                log_x
            } else {
                (((1.0 - theta) * log_x).exp() - 1.0) / (1.0 - theta)
            }
        };
        let h = |x: f64| -> f64 { (-theta * x.ln()).exp() };
        Zipf {
            n,
            theta,
            h_integral_x1: h_integral(1.5),
            h_integral_n: h_integral(n as f64 + 0.5),
            s: 2.0 - {
                // h_integral_inverse(h_integral(2.5) - h(2.5)) as in Hörmann.
                let t = h_integral(2.5) - h(2.5);
                Self::h_integral_inverse_raw(t, theta)
            },
        }
    }

    fn h_integral_inverse_raw(x: f64, theta: f64) -> f64 {
        let mut t = x * (1.0 - theta);
        if t < -1.0 {
            t = -1.0;
        }
        if (1.0 - theta).abs() < 1e-12 {
            x.exp()
        } else {
            (t.ln_1p() / (1.0 - theta)).exp()
        }
    }

    fn h_integral(&self, x: f64) -> f64 {
        let log_x = x.ln();
        if (1.0 - self.theta).abs() < 1e-12 {
            log_x
        } else {
            (((1.0 - self.theta) * log_x).exp() - 1.0) / (1.0 - self.theta)
        }
    }

    fn h(&self, x: f64) -> f64 {
        (-self.theta * x.ln()).exp()
    }

    /// Draws a rank in `0..n`; rank 0 is the most popular item.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        if self.theta == 0.0 {
            return rng.next_below(self.n);
        }
        loop {
            let u = self.h_integral_n + rng.next_f64() * (self.h_integral_x1 - self.h_integral_n);
            let x = Self::h_integral_inverse_raw(u, self.theta);
            let mut k = (x + 0.5) as u64;
            k = k.clamp(1, self.n);
            let kf = k as f64;
            if x >= kf - 0.5 && x <= kf + 0.5 {
                // Always-accept shortcut region near the mode.
                if kf - x <= self.s || u >= self.h_integral(kf + 0.5) - self.h(kf) {
                    return k - 1;
                }
            }
        }
    }

    /// Returns the domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Returns the skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = Rng::new(9);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_roughly_uniform() {
        let mut rng = Rng::new(5);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[rng.next_below(4) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed counts {counts:?}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.1));
    }

    #[test]
    fn forks_are_decorrelated() {
        let mut root = Rng::new(11);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let matches = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut rng = Rng::new(42);
        let zipf = Zipf::new(10_000, 0.99);
        let samples = 50_000;
        let mut head = 0u32;
        for _ in 0..samples {
            if zipf.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // With theta=0.99 the top 1% of ranks should absorb far more than 1%
        // of accesses (analytically ~48%); demand at least 30%.
        assert!(head as f64 / samples as f64 > 0.30, "head share too small");
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let mut rng = Rng::new(8);
        let zipf = Zipf::new(4, 0.0);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c));
        }
    }

    #[test]
    fn zipf_stays_in_domain() {
        let mut rng = Rng::new(13);
        for theta in [0.2, 0.8, 1.0, 1.3] {
            let zipf = Zipf::new(37, theta);
            for _ in 0..2000 {
                assert!(zipf.sample(&mut rng) < 37);
            }
        }
    }

    #[test]
    fn hash2_is_keyed() {
        assert_ne!(hash2(1, 2), hash2(2, 1));
        assert_eq!(hash2(5, 9), hash2(5, 9));
    }
}
