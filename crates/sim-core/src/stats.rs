//! Lightweight statistics primitives used across the simulator.

use std::fmt;

use crate::time::Time;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use dylect_sim_core::stats::Counter;
///
/// let mut hits = Counter::default();
/// hits.incr();
/// hits.add(2);
/// assert_eq!(hits.get(), 3);
/// ```
#[derive(Copy, Clone, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Reconstructs a counter from a previously observed count (cache
    /// deserialization).
    #[inline]
    pub fn from_value(value: u64) -> Self {
        Counter(value)
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Folds another counter into this one.
    #[inline]
    pub fn merge(&mut self, other: Counter) {
        self.0 += other.0;
    }

    /// Returns this count as a fraction of `total` (0 when `total` is 0).
    #[inline]
    pub fn fraction_of(self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// Accumulates samples for a mean (e.g. average miss latency).
///
/// # Example
///
/// ```
/// use dylect_sim_core::stats::MeanAccumulator;
///
/// let mut m = MeanAccumulator::default();
/// m.record(10.0);
/// m.record(30.0);
/// assert_eq!(m.mean(), 20.0);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Copy, Clone, Default, Debug, PartialEq)]
pub struct MeanAccumulator {
    sum: f64,
    count: u64,
}

impl MeanAccumulator {
    /// Reconstructs an accumulator from its running sum and sample count
    /// (cache deserialization).
    #[inline]
    pub fn from_parts(sum: f64, count: u64) -> Self {
        MeanAccumulator { sum, count }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, sample: f64) {
        self.sum += sample;
        self.count += 1;
    }

    /// Records a [`Time`] sample in nanoseconds.
    #[inline]
    pub fn record_time_ns(&mut self, t: Time) {
        self.record(t.as_ns());
    }

    /// Returns the mean of all samples (0 if no samples).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Returns the number of samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the running sum.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Folds another accumulator's samples into this one (used when
    /// aggregating statistics across memory controllers).
    #[inline]
    pub fn merge(&mut self, other: &MeanAccumulator) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// A power-of-two-bucketed latency histogram (bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds, bucket 0 holds `[0, 2)` ns).
///
/// # Example
///
/// ```
/// use dylect_sim_core::stats::LatencyHistogram;
/// use dylect_sim_core::Time;
///
/// let mut h = LatencyHistogram::new();
/// h.record(Time::from_ns(100.0));
/// assert_eq!(h.total(), 1);
/// assert!(h.percentile(0.5).as_ns() >= 64.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 32],
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, t: Time) {
        let ns = (t.as_ps() / 1000).max(1);
        let bucket = (63 - ns.leading_zeros()) as usize;
        let bucket = bucket.min(self.buckets.len() - 1);
        self.buckets[bucket] += 1;
    }

    /// Returns the total number of samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Returns an upper bound of the latency at quantile `q` in `[0, 1]`.
    ///
    /// Returns [`Time::ZERO`] for an empty histogram.
    pub fn percentile(&self, q: f64) -> Time {
        let total = self.total();
        if total == 0 {
            return Time::ZERO;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Time::from_ps(1000 << (i + 1));
            }
        }
        Time::MAX
    }

    /// Iterates over `(bucket_lower_bound_ns, count)` pairs for non-empty
    /// buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
    }
}

/// Divides two counters into a rate, guarding the zero-denominator case.
#[inline]
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.fraction_of(10), 0.5);
        assert_eq!(c.fraction_of(0), 0.0);
    }

    #[test]
    fn mean_accumulator() {
        let mut m = MeanAccumulator::default();
        assert_eq!(m.mean(), 0.0);
        m.record(2.0);
        m.record(4.0);
        assert_eq!(m.mean(), 3.0);
        m.record_time_ns(Time::from_ns(6.0));
        assert_eq!(m.count(), 3);
        assert_eq!(m.mean(), 4.0);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Time::from_ns(10.0));
        }
        for _ in 0..10 {
            h.record(Time::from_ns(1000.0));
        }
        assert_eq!(h.total(), 100);
        assert!(h.percentile(0.5).as_ns() <= 16.0 * 2.0);
        assert!(h.percentile(0.99).as_ns() >= 512.0);
    }

    #[test]
    fn histogram_empty() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.5), Time::ZERO);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn histogram_iter_skips_empty() {
        let mut h = LatencyHistogram::new();
        h.record(Time::from_ns(3.0));
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].1, 1);
    }

    #[test]
    fn ratio_guards_zero() {
        assert_eq!(ratio(1, 0), 0.0);
        assert_eq!(ratio(1, 2), 0.5);
    }
}
