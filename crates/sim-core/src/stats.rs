//! Lightweight statistics primitives used across the simulator.

use std::fmt;

use crate::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use crate::time::Time;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use dylect_sim_core::stats::Counter;
///
/// let mut hits = Counter::default();
/// hits.incr();
/// hits.add(2);
/// assert_eq!(hits.get(), 3);
/// ```
#[derive(Copy, Clone, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Reconstructs a counter from a previously observed count (cache
    /// deserialization).
    #[inline]
    pub fn from_value(value: u64) -> Self {
        Counter(value)
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Folds another counter into this one.
    #[inline]
    pub fn merge(&mut self, other: Counter) {
        self.0 += other.0;
    }

    /// Returns this count as a fraction of `total` (0 when `total` is 0).
    #[inline]
    pub fn fraction_of(self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// Accumulates samples for a mean (e.g. average miss latency).
///
/// # Example
///
/// ```
/// use dylect_sim_core::stats::MeanAccumulator;
///
/// let mut m = MeanAccumulator::default();
/// m.record(10.0);
/// m.record(30.0);
/// assert_eq!(m.mean(), 20.0);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Copy, Clone, Default, Debug, PartialEq)]
pub struct MeanAccumulator {
    sum: f64,
    count: u64,
}

impl MeanAccumulator {
    /// Reconstructs an accumulator from its running sum and sample count
    /// (cache deserialization).
    #[inline]
    pub fn from_parts(sum: f64, count: u64) -> Self {
        MeanAccumulator { sum, count }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, sample: f64) {
        self.sum += sample;
        self.count += 1;
    }

    /// Records a [`Time`] sample in nanoseconds.
    #[inline]
    pub fn record_time_ns(&mut self, t: Time) {
        self.record(t.as_ns());
    }

    /// Returns the mean of all samples (0 if no samples).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Returns the number of samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the running sum.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Folds another accumulator's samples into this one (used when
    /// aggregating statistics across memory controllers).
    #[inline]
    pub fn merge(&mut self, other: &MeanAccumulator) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// A power-of-two-bucketed latency histogram (bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds, bucket 0 holds `[0, 2)` ns).
///
/// # Example
///
/// ```
/// use dylect_sim_core::stats::LatencyHistogram;
/// use dylect_sim_core::Time;
///
/// let mut h = LatencyHistogram::new();
/// h.record(Time::from_ns(100.0));
/// assert_eq!(h.total(), 1);
/// assert!(h.percentile(0.5).as_ns() >= 64.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 32],
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, t: Time) {
        let ns = (t.as_ps() / 1000).max(1);
        let bucket = (63 - ns.leading_zeros()) as usize;
        let bucket = bucket.min(self.buckets.len() - 1);
        self.buckets[bucket] += 1;
    }

    /// Returns the total number of samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Returns an upper bound of the latency at quantile `q` in `[0, 1]`.
    ///
    /// Returns [`Time::ZERO`] for an empty histogram.
    pub fn percentile(&self, q: f64) -> Time {
        let total = self.total();
        if total == 0 {
            return Time::ZERO;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Time::from_ps(1000 << (i + 1));
            }
        }
        Time::MAX
    }

    /// Iterates over `(bucket_lower_bound_ns, count)` pairs for non-empty
    /// buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
    }
}

/// An HDR-style log-bucketed histogram with bounded relative error.
///
/// Values (picoseconds) land in buckets whose width doubles every octave
/// but which subdivide each octave into 16 linear sub-buckets, bounding
/// the relative quantization error at 1/16 ≈ 6% — fine enough for tail
/// percentiles (`p99.9`) without storing every sample. Unlike
/// [`LatencyHistogram`] (one bucket per power of two, good for coarse
/// distribution shape), this is the histogram the latency-attribution
/// layer keys per access outcome.
///
/// Storage grows lazily to the highest occupied bucket, so a sparsely
/// populated histogram (the common case per outcome key) stays small.
///
/// # Example
///
/// ```
/// use dylect_sim_core::stats::LogHistogram;
/// use dylect_sim_core::Time;
///
/// let mut h = LogHistogram::new();
/// for _ in 0..99 {
///     h.record(Time::from_ns(100.0));
/// }
/// h.record(Time::from_ns(10_000.0));
/// let p50 = h.percentile(0.50);
/// assert!(p50.as_ns() >= 100.0 && p50.as_ns() < 107.0);
/// assert!(h.percentile(0.999).as_ns() >= 10_000.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ps: u64,
}

/// log2 of the sub-buckets per octave (16 sub-buckets).
const LOG_SUB_BITS: u32 = 4;
const LOG_SUB: u64 = 1 << LOG_SUB_BITS;

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of value `v` (in picoseconds).
    ///
    /// Values below 16 get their own unit-width buckets; above that, each
    /// octave `[2^k, 2^(k+1))` splits into 16 equal sub-buckets.
    fn index(v: u64) -> usize {
        if v < LOG_SUB {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let major = (msb - LOG_SUB_BITS) as usize;
        let sub = ((v >> (msb - LOG_SUB_BITS)) - LOG_SUB) as usize;
        LOG_SUB as usize + major * LOG_SUB as usize + sub
    }

    /// Inclusive lower bound (ps) of bucket `idx`.
    fn lower(idx: usize) -> u64 {
        if idx < LOG_SUB as usize {
            return idx as u64;
        }
        let k = idx - LOG_SUB as usize;
        let major = (k / LOG_SUB as usize) as u32;
        let sub = (k % LOG_SUB as usize) as u64;
        (LOG_SUB + sub) << major
    }

    /// Exclusive upper bound (ps) of bucket `idx`.
    fn upper(idx: usize) -> u64 {
        if idx < LOG_SUB as usize {
            return idx as u64 + 1;
        }
        let k = idx - LOG_SUB as usize;
        let major = (k / LOG_SUB as usize) as u32;
        // The topmost bucket's bound would be 2^64; saturate.
        Self::lower(idx).saturating_add(1u64 << major)
    }

    /// Records one duration sample.
    pub fn record(&mut self, t: Time) {
        self.record_ps(t.as_ps());
    }

    /// Records one raw picosecond sample.
    pub fn record_ps(&mut self, ps: u64) {
        let idx = Self::index(ps);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ps = self.sum_ps.saturating_add(ps);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> Time {
        Time::from_ps(self.sum_ps)
    }

    /// Mean sample value (zero if empty).
    pub fn mean(&self) -> Time {
        Time::from_ps(self.sum_ps.checked_div(self.count).unwrap_or(0))
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ps = self.sum_ps.saturating_add(other.sum_ps);
    }

    /// An upper bound of the value at quantile `q` in `[0, 1]`
    /// (monotone in `q`; [`Time::ZERO`] for an empty histogram).
    pub fn percentile(&self, q: f64) -> Time {
        if self.count == 0 {
            return Time::ZERO;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let target = target.max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Exclusive upper bound, minus one ps to stay inside the
                // bucket (keeps `percentile(1.0)` ≥ the recorded maximum
                // while never exceeding the next bucket's samples).
                return Time::from_ps(Self::upper(i) - 1);
            }
        }
        unreachable!("cumulative count reaches self.count");
    }

    /// Iterates over `(bucket_index, count)` for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Inclusive lower bound (ps) of bucket `idx` — for export/labels.
    pub fn bucket_lower_ps(idx: usize) -> u64 {
        Self::lower(idx)
    }

    /// Exclusive upper bound (ps) of bucket `idx` — for export/labels.
    pub fn bucket_upper_ps(idx: usize) -> u64 {
        Self::upper(idx)
    }
}

impl Snapshot for Counter {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.0);
    }
}

impl Restore for Counter {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.0 = r.u64()?;
        Ok(())
    }
}

impl Snapshot for MeanAccumulator {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.f64(self.sum);
        w.u64(self.count);
    }
}

impl Restore for MeanAccumulator {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.sum = r.f64()?;
        self.count = r.u64()?;
        Ok(())
    }
}

impl Snapshot for LatencyHistogram {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        for &b in &self.buckets {
            w.u64(b);
        }
    }
}

impl Restore for LatencyHistogram {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for b in &mut self.buckets {
            *b = r.u64()?;
        }
        Ok(())
    }
}

impl Snapshot for LogHistogram {
    fn write_snapshot(&self, w: &mut SnapWriter) {
        w.seq(self.buckets.len());
        for &b in &self.buckets {
            w.u64(b);
        }
        w.u64(self.count);
        w.u64(self.sum_ps);
    }
}

impl Restore for LogHistogram {
    fn restore_snapshot(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let len = r.seq(8)?;
        self.buckets.clear();
        self.buckets.reserve(len);
        for _ in 0..len {
            self.buckets.push(r.u64()?);
        }
        self.count = r.u64()?;
        self.sum_ps = r.u64()?;
        Ok(())
    }
}

/// Divides two counters into a rate, guarding the zero-denominator case.
#[inline]
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.fraction_of(10), 0.5);
        assert_eq!(c.fraction_of(0), 0.0);
    }

    #[test]
    fn mean_accumulator() {
        let mut m = MeanAccumulator::default();
        assert_eq!(m.mean(), 0.0);
        m.record(2.0);
        m.record(4.0);
        assert_eq!(m.mean(), 3.0);
        m.record_time_ns(Time::from_ns(6.0));
        assert_eq!(m.count(), 3);
        assert_eq!(m.mean(), 4.0);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Time::from_ns(10.0));
        }
        for _ in 0..10 {
            h.record(Time::from_ns(1000.0));
        }
        assert_eq!(h.total(), 100);
        assert!(h.percentile(0.5).as_ns() <= 16.0 * 2.0);
        assert!(h.percentile(0.99).as_ns() >= 512.0);
    }

    #[test]
    fn histogram_empty() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.5), Time::ZERO);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn histogram_iter_skips_empty() {
        let mut h = LatencyHistogram::new();
        h.record(Time::from_ns(3.0));
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].1, 1);
    }

    #[test]
    fn ratio_guards_zero() {
        assert_eq!(ratio(1, 0), 0.0);
        assert_eq!(ratio(1, 2), 0.5);
    }

    #[test]
    fn log_histogram_bucket_boundaries_tile_the_axis() {
        // Buckets partition [0, 2^64): each bucket's exclusive upper bound
        // is the next bucket's inclusive lower bound, and every value maps
        // into the bucket whose bounds contain it.
        for idx in 0..900 {
            assert_eq!(
                LogHistogram::bucket_upper_ps(idx),
                LogHistogram::bucket_lower_ps(idx + 1),
                "gap or overlap at bucket {idx}"
            );
        }
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            1000,
            123_456,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = LogHistogram::index(v);
            assert!(
                LogHistogram::bucket_lower_ps(idx) <= v,
                "lower({idx}) > {v}"
            );
            assert!(
                v < LogHistogram::bucket_upper_ps(idx)
                    || LogHistogram::bucket_upper_ps(idx) == u64::MAX,
                "{v} >= upper({idx})"
            );
        }
        // Relative bucket width stays bounded (the HDR property).
        for idx in 32..900 {
            let lo = LogHistogram::bucket_lower_ps(idx);
            let width = LogHistogram::bucket_upper_ps(idx) - lo;
            assert!(width * 16 <= lo + width, "bucket {idx} wider than 1/16");
        }
    }

    #[test]
    fn log_histogram_percentiles_are_monotone() {
        let mut h = LogHistogram::new();
        let mut x = 1u64;
        for i in 0..1000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            h.record_ps(x % 10_000_000);
        }
        let mut last = Time::ZERO;
        for i in 0..=100 {
            let p = h.percentile(i as f64 / 100.0);
            assert!(p >= last, "percentile decreased at q={i}");
            last = p;
        }
    }

    #[test]
    fn log_histogram_merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for i in 0..500u64 {
            let v = i * i * 37;
            if i % 2 == 0 {
                a.record_ps(v);
            } else {
                b.record_ps(v);
            }
            all.record_ps(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.count(), 500);
        assert_eq!(a.sum(), all.sum());
    }

    #[test]
    fn log_histogram_zero_and_overflow_values() {
        let mut h = LogHistogram::new();
        h.record_ps(0);
        h.record_ps(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(0.0), Time::ZERO);
        // The top bucket's bound saturates instead of overflowing.
        assert!(h.percentile(1.0).as_ps() >= u64::MAX / 2);
        assert_eq!(h.sum().as_ps(), u64::MAX, "sum saturates");
        assert_eq!(LogHistogram::new().percentile(0.5), Time::ZERO);
    }

    #[test]
    fn log_histogram_empty_is_all_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), Time::ZERO);
        assert_eq!(h.mean(), Time::ZERO, "mean of nothing is zero, not NaN");
        assert_eq!(h.iter().count(), 0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.percentile(q), Time::ZERO);
        }
    }

    #[test]
    fn log_histogram_single_sample_pins_every_accessor() {
        let mut h = LogHistogram::new();
        h.record_ps(100_000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum().as_ps(), 100_000);
        assert_eq!(h.mean().as_ps(), 100_000);
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets.len(), 1);
        let (idx, n) = buckets[0];
        assert_eq!(n, 1);
        // Every quantile of a one-sample histogram lands in that sample's
        // bucket, and the reported bound brackets the sample itself.
        for q in [0.0, 0.25, 1.0] {
            let p = h.percentile(q).as_ps();
            assert!(
                LogHistogram::bucket_lower_ps(idx) <= p && p < LogHistogram::bucket_upper_ps(idx),
                "percentile({q}) = {p} left the sample's bucket"
            );
            assert!(p >= 100_000, "bound must not undershoot the sample");
        }
    }

    #[test]
    fn log_histogram_top_bucket_saturates_under_repetition() {
        // Repeated max-value samples: the sum saturates at u64::MAX
        // instead of wrapping, the mean stays within the top bucket, and
        // percentile upper bounds never overflow past u64::MAX.
        let mut h = LogHistogram::new();
        for _ in 0..3 {
            h.record_ps(u64::MAX);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum().as_ps(), u64::MAX);
        assert_eq!(h.mean().as_ps(), u64::MAX / 3, "mean of the saturated sum");
        let top = LogHistogram::index(u64::MAX);
        assert_eq!(LogHistogram::bucket_upper_ps(top), u64::MAX, "saturated");
        assert_eq!(h.percentile(1.0).as_ps(), u64::MAX - 1);
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets, vec![(top, 3)]);
    }

    #[test]
    fn log_histogram_mean_and_quantization_error() {
        let mut h = LogHistogram::new();
        for _ in 0..100 {
            h.record(Time::from_ns(280.0)); // 280_000 ps
        }
        assert_eq!(h.mean(), Time::from_ns(280.0));
        let p50 = h.percentile(0.5).as_ps() as f64;
        let err = (p50 - 280_000.0) / 280_000.0;
        assert!((0.0..=0.0625).contains(&err), "error {err} out of bounds");
    }
}
