//! `dylect-profile`: the host wall-clock side of DyLeCT's dual-clock
//! observability model.
//!
//! Everything else in this workspace measures the *simulated* machine in
//! picoseconds ([`crate::Time`]). This module measures the *simulator*
//! itself: where host wall-clock nanoseconds go while the model executes —
//! the data ROADMAP item 1 needs to decompose "the remaining cost is the
//! microarchitectural model" into an actionable work-list.
//!
//! The two clocks must never mix. Wall-clock readings are write-only
//! telemetry about the process; nothing recorded here may feed back into
//! simulated state, report fields, or the standard telemetry exports.
//! `tests/determinism.rs` pins that invariant by asserting byte-identical
//! reports and exports with profiling on and off.
//!
//! Design constraints (DESIGN.md, "Dual-clock self-profiling"):
//!
//! - **Zero cost when off.** Every instrumentation site is gated on a
//!   single relaxed atomic load, so `system_step_1000_ops` stays within
//!   noise of BENCH_batched.json with `DYLECT_PROF` unset.
//! - **<2% overhead when on.** At ~70 ns/op there is no budget for an
//!   `Instant::now()` pair per retired op. The hot path is therefore timed
//!   at batch granularity (exact scopes, a few per 256-op batch) and the
//!   per-event model phases (cache hierarchy, scheme, DRAM, page walks)
//!   are period-sampled ([`SAMPLE_PERIOD`]); [`report`] scales the sampled
//!   sums back up into estimates.
//! - **Mergeable across threads.** Accumulators are global atomics, so
//!   drain-shard workers and runner workers record into the same registry
//!   with no per-thread state to reconcile at the end.
//!
//! Phases form a hierarchy, not a partition: `mem_access` covers the whole
//! shared cache hierarchy and everything below it, so `scheme_access` and
//! `dram_access` time is (statistically) also inside it. Consumers render
//! them as attribution categories, not as summands of wall-clock.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Every instrumented host phase. `idx()` values are dense array indices
/// into the global registries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HostPhase {
    /// `System::execute` batched path: workload batch generation.
    BatchFill,
    /// `System::execute` batched path: SoA core stepping.
    BatchStep,
    /// `System::execute` per-op path (telemetry or multi-core), whole call.
    ExecutePerOp,
    /// `SharedMemory::drain_pending`, whole call (all shards).
    DrainWriteback,
    /// Shared cache hierarchy and below (`MemoryBackend::access`), sampled.
    MemAccess,
    /// Scheme directory / free-space work (`mc_access`), sampled.
    SchemeAccess,
    /// DRAM scheduler (`Dram::access_detailed` / `access_batch`), sampled.
    DramAccess,
    /// Page-table walks (`Core::do_walk`), sampled.
    TlbWalk,
    /// Runner report-cache reads.
    CacheRead,
    /// Runner report-cache writes.
    CacheWrite,
    /// Checkpoint snapshot reads (warm start).
    CheckpointRead,
    /// Checkpoint snapshot writes (cold run).
    CheckpointWrite,
    /// `dylect-serve` request handling (read + route + respond).
    ServeRequest,
    /// Telemetry export (`Telemetry::export_to`).
    Export,
}

/// Number of phases; registries are `[_; NPHASES]` indexed by `idx()`.
pub const NPHASES: usize = 14;

/// Sampling period for the per-event phases: one in `SAMPLE_PERIOD` events
/// is timed; [`report`] multiplies the recorded sums back up.
pub const SAMPLE_PERIOD: u32 = 128;

impl HostPhase {
    /// All phases in registry order.
    pub const ALL: [HostPhase; NPHASES] = [
        HostPhase::BatchFill,
        HostPhase::BatchStep,
        HostPhase::ExecutePerOp,
        HostPhase::DrainWriteback,
        HostPhase::MemAccess,
        HostPhase::SchemeAccess,
        HostPhase::DramAccess,
        HostPhase::TlbWalk,
        HostPhase::CacheRead,
        HostPhase::CacheWrite,
        HostPhase::CheckpointRead,
        HostPhase::CheckpointWrite,
        HostPhase::ServeRequest,
        HostPhase::Export,
    ];

    /// Dense registry index.
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in `.prof.jsonl`, `/metrics`, and the
    /// `dylect-stats` summary tables.
    pub fn name(self) -> &'static str {
        match self {
            HostPhase::BatchFill => "batch_fill",
            HostPhase::BatchStep => "batch_step",
            HostPhase::ExecutePerOp => "execute_per_op",
            HostPhase::DrainWriteback => "drain_writeback",
            HostPhase::MemAccess => "mem_access",
            HostPhase::SchemeAccess => "scheme_access",
            HostPhase::DramAccess => "dram_access",
            HostPhase::TlbWalk => "tlb_walk",
            HostPhase::CacheRead => "cache_read",
            HostPhase::CacheWrite => "cache_write",
            HostPhase::CheckpointRead => "checkpoint_read",
            HostPhase::CheckpointWrite => "checkpoint_write",
            HostPhase::ServeRequest => "serve_request",
            HostPhase::Export => "export",
        }
    }

    /// Whether the phase is recorded through [`sampled_scope`] (period
    /// sampled) rather than [`scope`] (exact).
    pub fn is_sampled(self) -> bool {
        matches!(
            self,
            HostPhase::BatchFill
                | HostPhase::BatchStep
                | HostPhase::MemAccess
                | HostPhase::SchemeAccess
                | HostPhase::DramAccess
                | HostPhase::TlbWalk
        )
    }
}

/// Worker pools whose per-worker busy time is tracked, so `DYLECT_JOBS`
/// utilization is visible.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkerKind {
    /// Sharded writeback-drain workers (`SharedMemory::drain_pending`).
    Drain,
    /// Runner job-pool workers (`Runner::run_jobs`).
    Runner,
}

impl WorkerKind {
    /// Stable name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            WorkerKind::Drain => "drain",
            WorkerKind::Runner => "runner",
        }
    }
}

/// Upper bound on tracked worker ids per pool; higher ids clamp to the
/// last slot rather than being dropped.
pub const MAX_WORKERS: usize = 32;

/// Cap on retained host spans for the dual-clock Chrome trace; beyond it
/// spans are counted in `spans_dropped` instead of stored.
const MAX_SPANS: usize = 16_384;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NS: [AtomicU64; NPHASES] = [const { AtomicU64::new(0) }; NPHASES];
static CALLS: [AtomicU64; NPHASES] = [const { AtomicU64::new(0) }; NPHASES];
static WORKER_NS: [[AtomicU64; MAX_WORKERS]; 2] =
    [const { [const { AtomicU64::new(0) }; MAX_WORKERS] }; 2];
static WORKER_ITEMS: [[AtomicU64; MAX_WORKERS]; 2] =
    [const { [const { AtomicU64::new(0) }; MAX_WORKERS] }; 2];
static SPANS_DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

fn spans() -> &'static Mutex<Vec<HostSpan>> {
    static SPANS: OnceLock<Mutex<Vec<HostSpan>>> = OnceLock::new();
    SPANS.get_or_init(|| Mutex::new(Vec::new()))
}

/// The process-wide origin for span timestamps. Initialized on first use,
/// so spans recorded before/after [`reset`] share one timeline.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Per-phase sampling tick counters (process-wide; see [`sampled_scope`]).
static TICKS: [AtomicU32; NPHASES] = [const { AtomicU32::new(0) }; NPHASES];

thread_local! {
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed) as u32;
}

/// Is host profiling on? One relaxed load: this is the entire cost of an
/// instrumentation site when profiling is disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns profiling on or off programmatically (benches and tests; binaries
/// go through [`init_from_env`]).
pub fn set_enabled(on: bool) {
    if on {
        epoch(); // pin the timeline origin before the first span
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Strict `DYLECT_PROF` parser. Unset or empty means off; `0`/`false` off,
/// `1`/`true` on; anything else is a usage error (same contract as
/// `DYLECT_SHADOW`).
pub fn parse_prof(raw: Option<&str>) -> Result<bool, String> {
    match raw {
        None => Ok(false),
        Some(s) => match s.trim() {
            "" | "0" | "false" => Ok(false),
            "1" | "true" => Ok(true),
            other => Err(format!(
                "DYLECT_PROF must be unset, 0, 1, true, or false; got {other:?}"
            )),
        },
    }
}

/// Reads `DYLECT_PROF` without applying it.
pub fn prof_from_env() -> Result<bool, String> {
    parse_prof(std::env::var("DYLECT_PROF").ok().as_deref())
}

/// Reads `DYLECT_PROF` and applies it; returns the resulting state so
/// callers can branch on it.
pub fn init_from_env() -> Result<bool, String> {
    let on = prof_from_env()?;
    set_enabled(on);
    Ok(on)
}

/// Zeroes every accumulator and drops retained spans. Used by benches to
/// attribute a measurement window, and by tests.
pub fn reset() {
    for i in 0..NPHASES {
        NS[i].store(0, Ordering::Relaxed);
        CALLS[i].store(0, Ordering::Relaxed);
        TICKS[i].store(0, Ordering::Relaxed);
    }
    for pool in &WORKER_NS {
        for w in pool {
            w.store(0, Ordering::Relaxed);
        }
    }
    for pool in &WORKER_ITEMS {
        for w in pool {
            w.store(0, Ordering::Relaxed);
        }
    }
    SPANS_DROPPED.store(0, Ordering::Relaxed);
    spans().lock().expect("prof spans lock").clear();
}

/// RAII phase timer. Inert (no clock read at all) when profiling is off or
/// the sampler skipped this event.
pub struct Scope {
    phase: HostPhase,
    start: Option<Instant>,
    span: bool,
}

/// Exact scope: times every call, and retains a host span for the
/// dual-clock Chrome trace. Use only at batch/IO/request granularity —
/// never per simulated event.
#[inline]
pub fn scope(phase: HostPhase) -> Scope {
    let start = enabled().then(Instant::now);
    Scope {
        phase,
        start,
        span: true,
    }
}

/// Sampled scope: times one in [`SAMPLE_PERIOD`] calls process-wide, and
/// retains a host span for the timed calls only. Safe on per-event and
/// per-batch paths. The tick is a relaxed `fetch_add` on a per-phase
/// global — cheaper than thread-local state on hosts with dynamic-model
/// TLS, and each call still draws a unique tick so the
/// 1-in-`SAMPLE_PERIOD` rate holds across threads.
#[inline]
pub fn sampled_scope(phase: HostPhase) -> Scope {
    let start = if enabled() {
        let ticks = TICKS[phase.idx()]
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_add(1);
        ticks.is_multiple_of(SAMPLE_PERIOD).then(Instant::now)
    } else {
        None
    };
    Scope {
        phase,
        start,
        span: true,
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = start.elapsed().as_nanos() as u64;
        let i = self.phase.idx();
        NS[i].fetch_add(ns, Ordering::Relaxed);
        CALLS[i].fetch_add(1, Ordering::Relaxed);
        // Timed phases also feed the always-armed flight recorder, so a
        // crash dump interleaves host phases with the sim-event stream.
        crate::blackbox::record(crate::blackbox::EventKind::HostPhase, i as u64, ns);
        if self.span {
            record_span(self.phase, start, ns);
        }
    }
}

fn record_span(phase: HostPhase, start: Instant, dur_ns: u64) {
    let start_ns = start
        .checked_duration_since(epoch())
        .unwrap_or_default()
        .as_nanos() as u64;
    let tid = TID.with(|t| *t);
    let mut spans = spans().lock().expect("prof spans lock");
    if spans.len() >= MAX_SPANS {
        SPANS_DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    spans.push(HostSpan {
        phase,
        tid,
        start_ns,
        dur_ns,
    });
}

/// Records one worker's contribution to a pool: `busy_ns` of wall-clock
/// spent working and `items` units processed. Ids at or above
/// [`MAX_WORKERS`] clamp to the last slot.
pub fn worker_busy(kind: WorkerKind, wid: usize, busy_ns: u64, items: u64) {
    let k = kind as usize;
    let w = wid.min(MAX_WORKERS - 1);
    WORKER_NS[k][w].fetch_add(busy_ns, Ordering::Relaxed);
    WORKER_ITEMS[k][w].fetch_add(items, Ordering::Relaxed);
}

/// One host span, for the dual-clock Chrome trace. Timestamps are
/// nanoseconds since the process profiling epoch.
#[derive(Clone, Debug)]
pub struct HostSpan {
    pub phase: HostPhase,
    pub tid: u32,
    pub start_ns: u64,
    pub dur_ns: u64,
}

/// One phase's accumulated totals. For sampled phases `ns`/`calls` are the
/// recorded (sampled) sums and `est_ns`/`est_calls` scale them by
/// [`SAMPLE_PERIOD`]; for exact phases the pairs are equal.
#[derive(Clone, Debug)]
pub struct PhaseRow {
    pub phase: HostPhase,
    pub sampled: bool,
    pub ns: u64,
    pub calls: u64,
    pub est_ns: u64,
    pub est_calls: u64,
}

/// One worker's busy accounting.
#[derive(Clone, Debug)]
pub struct WorkerRow {
    pub kind: WorkerKind,
    pub wid: usize,
    pub busy_ns: u64,
    pub items: u64,
}

/// A consistent-enough snapshot of the whole registry (individual counters
/// are read relaxed; profiling is observability, not accounting).
#[derive(Clone, Debug, Default)]
pub struct ProfReport {
    pub phases: Vec<PhaseRow>,
    pub workers: Vec<WorkerRow>,
    pub spans: Vec<HostSpan>,
    pub spans_dropped: u64,
}

/// Snapshots every phase (zero rows included, so exporters always emit the
/// full series set), every active worker slot, and the retained spans.
pub fn report() -> ProfReport {
    let mut phases = Vec::with_capacity(NPHASES);
    for phase in HostPhase::ALL {
        let i = phase.idx();
        let ns = NS[i].load(Ordering::Relaxed);
        let calls = CALLS[i].load(Ordering::Relaxed);
        let (est_ns, est_calls) = if phase.is_sampled() {
            (
                ns.saturating_mul(SAMPLE_PERIOD as u64),
                calls.saturating_mul(SAMPLE_PERIOD as u64),
            )
        } else {
            (ns, calls)
        };
        phases.push(PhaseRow {
            phase,
            sampled: phase.is_sampled(),
            ns,
            calls,
            est_ns,
            est_calls,
        });
    }
    let mut workers = Vec::new();
    for kind in [WorkerKind::Drain, WorkerKind::Runner] {
        let k = kind as usize;
        for wid in 0..MAX_WORKERS {
            let busy_ns = WORKER_NS[k][wid].load(Ordering::Relaxed);
            let items = WORKER_ITEMS[k][wid].load(Ordering::Relaxed);
            if busy_ns != 0 || items != 0 {
                workers.push(WorkerRow {
                    kind,
                    wid,
                    busy_ns,
                    items,
                });
            }
        }
    }
    let spans = spans().lock().expect("prof spans lock").clone();
    ProfReport {
        phases,
        workers,
        spans,
        spans_dropped: SPANS_DROPPED.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profiling state is process-global; tests that toggle it serialize
    /// here so they cannot observe each other's windows.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parse_prof_accepts_the_strict_grammar_only() {
        assert_eq!(parse_prof(None), Ok(false));
        assert_eq!(parse_prof(Some("")), Ok(false));
        assert_eq!(parse_prof(Some("0")), Ok(false));
        assert_eq!(parse_prof(Some("false")), Ok(false));
        assert_eq!(parse_prof(Some("1")), Ok(true));
        assert_eq!(parse_prof(Some("true")), Ok(true));
        assert_eq!(parse_prof(Some(" 1 ")), Ok(true));
        for bad in ["yes", "2", "on", "TRUE", "0x1"] {
            let err = parse_prof(Some(bad)).expect_err(bad);
            assert!(err.contains("DYLECT_PROF"), "{err}");
        }
    }

    #[test]
    fn phase_indices_are_dense_and_names_unique() {
        let mut names = std::collections::BTreeSet::new();
        for (i, phase) in HostPhase::ALL.iter().enumerate() {
            assert_eq!(phase.idx(), i);
            assert!(names.insert(phase.name()), "dup name {}", phase.name());
        }
        assert_eq!(names.len(), NPHASES);
    }

    #[test]
    fn disabled_scopes_record_nothing() {
        let _g = lock();
        set_enabled(false);
        reset();
        {
            let _a = scope(HostPhase::Export);
            let _b = sampled_scope(HostPhase::DramAccess);
        }
        let rep = report();
        assert!(rep.phases.iter().all(|p| p.ns == 0 && p.calls == 0));
        assert!(rep.spans.is_empty());
    }

    #[test]
    fn enabled_exact_scope_records_ns_calls_and_a_span() {
        let _g = lock();
        set_enabled(true);
        reset();
        {
            let _a = scope(HostPhase::Export);
            std::hint::black_box(0u64);
        }
        set_enabled(false);
        let rep = report();
        let row = &rep.phases[HostPhase::Export.idx()];
        assert_eq!(row.calls, 1);
        assert_eq!(row.est_calls, 1);
        assert!(!row.sampled);
        assert_eq!(rep.spans.len(), 1);
        assert_eq!(rep.spans[0].phase, HostPhase::Export);
        reset();
    }

    #[test]
    fn sampled_scope_records_once_per_period_and_scales_estimates() {
        let _g = lock();
        set_enabled(true);
        reset();
        for _ in 0..(SAMPLE_PERIOD * 3) {
            let _s = sampled_scope(HostPhase::TlbWalk);
        }
        set_enabled(false);
        let rep = report();
        let row = &rep.phases[HostPhase::TlbWalk.idx()];
        assert_eq!(row.calls, 3);
        assert_eq!(row.est_calls, 3 * SAMPLE_PERIOD as u64);
        assert!(row.sampled);
        // Sampled scopes retain spans only for the timed 1-in-period calls.
        assert_eq!(rep.spans.len(), 3);
        reset();
    }

    #[test]
    fn worker_busy_accumulates_and_clamps_wide_ids() {
        let _g = lock();
        set_enabled(false);
        reset();
        worker_busy(WorkerKind::Drain, 1, 100, 4);
        worker_busy(WorkerKind::Drain, 1, 50, 2);
        worker_busy(WorkerKind::Runner, MAX_WORKERS + 7, 9, 1);
        let rep = report();
        let drain: Vec<_> = rep
            .workers
            .iter()
            .filter(|w| w.kind == WorkerKind::Drain)
            .collect();
        assert_eq!(drain.len(), 1);
        assert_eq!(
            (drain[0].wid, drain[0].busy_ns, drain[0].items),
            (1, 150, 6)
        );
        let runner: Vec<_> = rep
            .workers
            .iter()
            .filter(|w| w.kind == WorkerKind::Runner)
            .collect();
        assert_eq!(runner.len(), 1);
        assert_eq!(runner[0].wid, MAX_WORKERS - 1);
        reset();
    }

    #[test]
    fn reset_clears_every_registry() {
        let _g = lock();
        set_enabled(true);
        {
            let _a = scope(HostPhase::CacheRead);
        }
        worker_busy(WorkerKind::Drain, 0, 7, 1);
        set_enabled(false);
        reset();
        let rep = report();
        assert!(rep.phases.iter().all(|p| p.ns == 0 && p.calls == 0));
        assert!(rep.workers.is_empty());
        assert!(rep.spans.is_empty());
        assert_eq!(rep.spans_dropped, 0);
    }
}
