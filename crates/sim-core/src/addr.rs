//! Address-space newtypes.
//!
//! The simulator juggles three address spaces (virtual, OS-physical, and
//! machine-physical — see the crate docs). Each gets its own newtype so they
//! cannot be confused. Page identifiers likewise come in two flavors:
//! [`PageId`] indexes 4 KB pages of *OS-visible* memory (what a CTE
//! translates *for*) while [`DramPageId`] indexes 4 KB frames of *actual
//! DRAM* (what a CTE translates *to*).

use std::fmt;

/// Size of a cache block / DRAM burst in bytes.
pub const BLOCK_BYTES: u64 = 64;
/// Size of a standard OS page in bytes.
pub const PAGE_BYTES: u64 = 4096;
/// Size of an x86 huge page in bytes.
pub const HUGE_PAGE_BYTES: u64 = 2 * 1024 * 1024;
/// Number of 64 B blocks in a 4 KB page.
pub const BLOCKS_PER_PAGE: u64 = PAGE_BYTES / BLOCK_BYTES;
/// Number of 4 KB pages in a 2 MB huge page.
pub const PAGES_PER_HUGE_PAGE: u64 = HUGE_PAGE_BYTES / PAGE_BYTES;

macro_rules! addr_newtype {
    ($(#[$meta:meta])* $name:ident, $page:ty, $page_ctor:expr) => {
        $(#[$meta])*
        #[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw byte address.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw byte address.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the 4 KB page this address falls in.
            #[inline]
            pub const fn page(self) -> $page {
                $page_ctor(self.0 / PAGE_BYTES)
            }

            /// Returns the byte offset within the 4 KB page.
            #[inline]
            pub const fn page_offset(self) -> u64 {
                self.0 % PAGE_BYTES
            }

            /// Returns the address rounded down to its 64 B block.
            #[inline]
            pub const fn block_base(self) -> Self {
                Self(self.0 / BLOCK_BYTES * BLOCK_BYTES)
            }

            /// Returns the global 64 B block index of this address.
            #[inline]
            pub const fn block_index(self) -> u64 {
                self.0 / BLOCK_BYTES
            }

            /// Returns this address displaced by `bytes`.
            #[inline]
            pub const fn offset(self, bytes: u64) -> Self {
                Self(self.0 + bytes)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }
    };
}

addr_newtype!(
    /// A virtual address as seen by the running program.
    VirtAddr,
    PageId,
    PageId::new
);
addr_newtype!(
    /// An OS-visible physical address (the output of the TLB / page tables).
    ///
    /// Under hardware memory compression this space can be *larger* than
    /// installed DRAM; it is the input of the MC-managed CTE translation.
    PhysAddr,
    PageId,
    PageId::new
);
addr_newtype!(
    /// A machine-physical address: a location in actual DRAM, the output of
    /// CTE translation and the input of the DRAM address-mapping function.
    MachineAddr,
    DramPageId,
    DramPageId::new
);

macro_rules! page_newtype {
    ($(#[$meta:meta])* $name:ident, $addr:ty) => {
        $(#[$meta])*
        #[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw 4 KB-page index.
            #[inline]
            pub const fn new(index: u64) -> Self {
                Self(index)
            }

            /// Returns the raw page index.
            #[inline]
            pub const fn index(self) -> u64 {
                self.0
            }

            /// Returns the byte address of the first byte of this page.
            #[inline]
            pub const fn base_addr(self) -> $addr {
                <$addr>::new(self.0 * PAGE_BYTES)
            }

            /// Returns the byte address at `offset` within this page.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if `offset >= PAGE_BYTES`.
            #[inline]
            pub fn addr_at(self, offset: u64) -> $addr {
                debug_assert!(offset < PAGE_BYTES, "offset {offset} out of page");
                <$addr>::new(self.0 * PAGE_BYTES + offset)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.0, f)
            }
        }
    };
}

page_newtype!(
    /// Index of a 4 KB page of OS-visible memory.
    ///
    /// The paper calls every 4 KB range of OS-visible memory "an OS page"
    /// regardless of whether it stands alone or is part of a huge page; the
    /// flat CTE table has one entry per `PageId`.
    PageId,
    PhysAddr
);
page_newtype!(
    /// Index of a 4 KB frame of actual DRAM.
    DramPageId,
    MachineAddr
);

impl PageId {
    /// Returns the 2 MB huge-page index containing this OS page.
    #[inline]
    pub const fn huge_page(self) -> u64 {
        self.0 / PAGES_PER_HUGE_PAGE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_and_offset() {
        let a = PhysAddr::new(3 * PAGE_BYTES + 100);
        assert_eq!(a.page(), PageId::new(3));
        assert_eq!(a.page_offset(), 100);
    }

    #[test]
    fn block_rounding() {
        let a = MachineAddr::new(130);
        assert_eq!(a.block_base(), MachineAddr::new(128));
        assert_eq!(a.block_index(), 2);
    }

    #[test]
    fn page_base_and_addr_at() {
        let p = DramPageId::new(7);
        assert_eq!(p.base_addr(), MachineAddr::new(7 * PAGE_BYTES));
        assert_eq!(p.addr_at(64), MachineAddr::new(7 * PAGE_BYTES + 64));
        assert_eq!(p.base_addr().page(), p);
    }

    #[test]
    fn huge_page_grouping() {
        assert_eq!(PageId::new(511).huge_page(), 0);
        assert_eq!(PageId::new(512).huge_page(), 1);
        assert_eq!(PAGES_PER_HUGE_PAGE, 512);
    }

    #[test]
    fn distinct_types_format() {
        let v = VirtAddr::new(0x1000);
        let p = PhysAddr::new(0x1000);
        assert_eq!(format!("{v:?}"), "VirtAddr(0x1000)");
        assert_eq!(format!("{p:?}"), "PhysAddr(0x1000)");
        assert_eq!(format!("{p:x}"), "1000");
    }

    #[test]
    fn offset_moves_forward() {
        let a = PhysAddr::new(0x40);
        assert_eq!(a.offset(0x40), PhysAddr::new(0x80));
    }
}
