//! A tiny dependency-free key/value codec for on-disk run reports.
//!
//! The experiment runner caches one [`RunReport`]-shaped record per run key
//! under `results/cache/`. The format is a flat, JSON-ish object — one
//! `"key": "value"` pair per line — chosen so files are diffable and
//! greppable while the codec stays ~100 lines with no external crates.
//!
//! Every value is written as a string. Integers use decimal; floats are
//! written as `f64:<hex bit pattern>` so the round-trip is *bit-exact* —
//! a report parsed back from the cache compares equal to the freshly
//! simulated one, which the determinism tests rely on. A human-readable
//! decimal rendering is appended after a space purely as a comment.
//!
//! [`RunReport`]: ../../dylect_sim/struct.RunReport.html
//!
//! # Example
//!
//! ```
//! use dylect_sim_core::kv::{KvReader, KvWriter};
//!
//! let mut w = KvWriter::new();
//! w.put_u64("ops", 17);
//! w.put_f64("rate", 0.1);
//! let text = w.finish();
//! let r = KvReader::parse(&text).unwrap();
//! assert_eq!(r.get_u64("ops"), Some(17));
//! assert_eq!(r.get_f64("rate"), Some(0.1));
//! ```

use std::collections::HashMap;

/// Serializes key/value pairs into the JSON-ish cache format.
#[derive(Default)]
pub struct KvWriter {
    lines: Vec<String>,
}

impl KvWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a string value. Keys and values must not contain `"`, `\`
    /// or newlines (run labels and benchmark names never do).
    pub fn put_str(&mut self, key: &str, value: &str) {
        debug_assert!(!key.contains(['"', '\\', '\n']), "bad key {key:?}");
        debug_assert!(!value.contains(['"', '\\', '\n']), "bad value {value:?}");
        self.lines.push(format!("  \"{key}\": \"{value}\","));
    }

    /// Writes an unsigned integer.
    pub fn put_u64(&mut self, key: &str, value: u64) {
        self.put_str(key, &value.to_string());
    }

    /// Writes a float, bit-exactly.
    pub fn put_f64(&mut self, key: &str, value: f64) {
        self.put_str(key, &format!("f64:{:016x} {value:e}", value.to_bits()));
    }

    /// Returns the serialized object.
    pub fn finish(self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&self.lines.join("\n"));
        out.push_str("\n}\n");
        out
    }
}

/// Parses text produced by [`KvWriter`].
pub struct KvReader {
    pairs: HashMap<String, String>,
}

impl KvReader {
    /// Parses a serialized object; `None` on malformed input (a truncated
    /// or hand-edited cache file is treated as a cache miss, not an error).
    pub fn parse(text: &str) -> Option<KvReader> {
        let body = text.trim();
        if !body.starts_with('{') || !body.ends_with('}') {
            return None;
        }
        let mut pairs = HashMap::new();
        for line in body[1..body.len() - 1].lines() {
            let line = line.trim().trim_end_matches(',');
            if line.is_empty() {
                continue;
            }
            let rest = line.strip_prefix('"')?;
            let (key, rest) = rest.split_once("\": \"")?;
            let value = rest.strip_suffix('"')?;
            pairs.insert(key.to_owned(), value.to_owned());
        }
        Some(KvReader { pairs })
    }

    /// Looks up a raw string value.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.pairs.get(key).map(String::as_str)
    }

    /// Looks up an unsigned integer.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get_str(key)?.parse().ok()
    }

    /// Looks up a float written by [`KvWriter::put_f64`].
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        let v = self.get_str(key)?.strip_prefix("f64:")?;
        let hex = v.split(' ').next()?;
        Some(f64::from_bits(u64::from_str_radix(hex, 16).ok()?))
    }
}

/// A stable 64-bit FNV-1a fingerprint, used to version cache entries by
/// their full configuration. Stable across processes and platforms (unlike
/// `DefaultHasher`, which is randomly keyed per process).
pub fn fingerprint64(input: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in input.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact() {
        let mut w = KvWriter::new();
        w.put_str("name", "bfs");
        w.put_u64("big", u64::MAX);
        for (i, v) in [0.1, -0.0, f64::MIN_POSITIVE, 1e300, 2.0f64.sqrt()]
            .into_iter()
            .enumerate()
        {
            w.put_f64(&format!("f{i}"), v);
        }
        let text = w.finish();
        let r = KvReader::parse(&text).expect("parses");
        assert_eq!(r.get_str("name"), Some("bfs"));
        assert_eq!(r.get_u64("big"), Some(u64::MAX));
        assert_eq!(r.get_f64("f0"), Some(0.1));
        assert_eq!(r.get_f64("f1").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64("f4"), Some(2.0f64.sqrt()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(KvReader::parse("").is_none());
        assert!(KvReader::parse("{ \"k\": 3 }").is_none());
        assert!(KvReader::parse("not json").is_none());
    }

    #[test]
    fn fingerprint_is_stable() {
        // Pinned: a changed fingerprint function would silently invalidate
        // (or worse, alias) every existing cache entry.
        assert_eq!(fingerprint64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint64("dylect"), fingerprint64("dylect"));
        assert_ne!(fingerprint64("dylect"), fingerprint64("tmcc"));
    }
}
