//! `dylect-blackbox`: the always-on flight recorder.
//!
//! A crashing or diverging run should leave forensics, not just an assert
//! message. This module keeps a bounded ring of recent coarse events
//! (batch retirements, digest windows, writeback drains, checkpoint IO,
//! host phases) that is *always armed* — recording is a couple of relaxed
//! atomic stores, cheap enough to never gate — and dumps the rings as
//! JSONL when the process panics or a digest mismatch is detected.
//!
//! Rings are per-worker (threads hash onto [`NRINGS`] fixed rings of
//! [`RING_ENTRIES`] slots each) so recording never contends on a lock.
//! Slots are plain relaxed atomics: a dump racing a recorder may read a
//! torn slot, which is acceptable — this is crash forensics, not
//! accounting, and a dump normally runs when the sim has already stopped.
//!
//! Dumps land in `<dump_dir>/<label>.crash.jsonl` (default
//! `results/blackbox/`), one JSON object per line: a header row with the
//! dump reason, then every recorded event in global sequence order.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Slots per ring. Old events are overwritten in FIFO order.
pub const RING_ENTRIES: usize = 4096;

/// Fixed per-worker rings; thread ids hash onto these.
pub const NRINGS: usize = 8;

/// Coarse event classes the recorder understands. Each event carries two
/// `u64` operands whose meaning is per-kind (documented on the variant).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A batch of ops retired: `a` = ops in the batch, `b` = ops still
    /// remaining in the execute call (0 when untracked).
    BatchRetire,
    /// A digest window captured: `a` = window index, `b` = folded digest.
    WindowDigest,
    /// A writeback drain: `a` = queued entries, `b` = controller count.
    DrainWriteback,
    /// Checkpoint written: `a` = bytes, `b` = config fingerprint.
    CheckpointSave,
    /// Checkpoint restored: `a` = bytes, `b` = config fingerprint.
    CheckpointRestore,
    /// Runner job started: `a` = label fingerprint, `b` = worker id.
    RunStart,
    /// Runner job finished: `a` = label fingerprint, `b` = worker id.
    RunEnd,
    /// Host profiler span: `a` = phase index, `b` = duration ns.
    HostPhase,
    /// Digest mismatch detected: `a` = window index, `b` = op index.
    DigestMismatch,
    /// Test-only perturbation hook fired: `a` = op index.
    PerturbFired,
    /// Free-form marker: both operands caller-defined.
    Mark,
}

/// Number of event kinds; [`EventKind::ALL`] is indexed by `idx()`.
pub const NKINDS: usize = 11;

impl EventKind {
    /// All kinds in wire order.
    pub const ALL: [EventKind; NKINDS] = [
        EventKind::BatchRetire,
        EventKind::WindowDigest,
        EventKind::DrainWriteback,
        EventKind::CheckpointSave,
        EventKind::CheckpointRestore,
        EventKind::RunStart,
        EventKind::RunEnd,
        EventKind::HostPhase,
        EventKind::DigestMismatch,
        EventKind::PerturbFired,
        EventKind::Mark,
    ];

    /// Dense wire index.
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in crash dumps.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::BatchRetire => "batch_retire",
            EventKind::WindowDigest => "window_digest",
            EventKind::DrainWriteback => "drain_writeback",
            EventKind::CheckpointSave => "checkpoint_save",
            EventKind::CheckpointRestore => "checkpoint_restore",
            EventKind::RunStart => "run_start",
            EventKind::RunEnd => "run_end",
            EventKind::HostPhase => "host_phase",
            EventKind::DigestMismatch => "digest_mismatch",
            EventKind::PerturbFired => "perturb_fired",
            EventKind::Mark => "mark",
        }
    }
}

/// One ring slot: global sequence (0 = never written), packed
/// kind/thread, and the two operands.
struct Slot {
    seq: AtomicU64,
    meta: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: Slot = Slot {
    seq: AtomicU64::new(0),
    meta: AtomicU64::new(0),
    a: AtomicU64::new(0),
    b: AtomicU64::new(0),
};

struct Ring {
    head: AtomicU64,
    slots: [Slot; RING_ENTRIES],
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_RING: Ring = Ring {
    head: AtomicU64::new(0),
    slots: [EMPTY_SLOT; RING_ENTRIES],
};

static RINGS: [Ring; NRINGS] = [EMPTY_RING; NRINGS];

/// Global event order stamp. Starts at 1 so `seq == 0` marks an
/// untouched slot.
static SEQ: AtomicU64 = AtomicU64::new(1);

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn label_cell() -> &'static Mutex<String> {
    static LABEL: OnceLock<Mutex<String>> = OnceLock::new();
    LABEL.get_or_init(|| Mutex::new("unlabeled".to_owned()))
}

fn dump_dir_cell() -> &'static Mutex<PathBuf> {
    static DIR: OnceLock<Mutex<PathBuf>> = OnceLock::new();
    DIR.get_or_init(|| Mutex::new(PathBuf::from("results/blackbox")))
}

/// Records one event. Always armed: the cost is two relaxed
/// `fetch_add`s and four relaxed stores, with no branches on any
/// enable flag and no locks.
#[inline]
pub fn record(kind: EventKind, a: u64, b: u64) {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let tid = TID.with(|t| *t);
    let ring = &RINGS[(tid as usize) % NRINGS];
    let slot = &ring.slots[(ring.head.fetch_add(1, Ordering::Relaxed) as usize) % RING_ENTRIES];
    slot.meta.store(
        (kind.idx() as u64) << 32 | (tid & 0xFFFF_FFFF),
        Ordering::Relaxed,
    );
    slot.a.store(a, Ordering::Relaxed);
    slot.b.store(b, Ordering::Relaxed);
    // Stamp seq last so a slot with a visible seq has (in the common,
    // quiescent-dump case) its payload already in place.
    slot.seq.store(seq, Ordering::Relaxed);
}

/// Sets the run label used for crash-dump filenames. Labels are
/// sanitized like runner cache keys: anything outside `[A-Za-z0-9._-]`
/// becomes `_`.
pub fn set_label(label: &str) {
    let clean: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    let clean = if clean.is_empty() {
        "unlabeled".to_owned()
    } else {
        clean
    };
    *label_cell().lock().unwrap_or_else(|e| e.into_inner()) = clean;
}

/// Overrides the dump directory (tests; the default is
/// `results/blackbox` under the working directory).
pub fn set_dump_dir(dir: PathBuf) {
    *dump_dir_cell().lock().unwrap_or_else(|e| e.into_inner()) = dir;
}

/// One event read back out of the rings.
#[derive(Clone, Debug)]
pub struct EventRow {
    /// Global order stamp (monotonically increasing across rings).
    pub seq: u64,
    /// Ring the event landed in.
    pub ring: usize,
    /// Recording thread's blackbox id.
    pub tid: u64,
    /// Event kind.
    pub kind: EventKind,
    /// First operand (per-kind meaning).
    pub a: u64,
    /// Second operand (per-kind meaning).
    pub b: u64,
}

/// Reads every recorded event, sorted by global sequence. Slots whose
/// kind index is out of range (torn writes) are skipped.
pub fn events() -> Vec<EventRow> {
    let mut rows = Vec::new();
    for (ring_idx, ring) in RINGS.iter().enumerate() {
        for slot in &ring.slots {
            let seq = slot.seq.load(Ordering::Relaxed);
            if seq == 0 {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let Some(&kind) = EventKind::ALL.get((meta >> 32) as usize) else {
                continue;
            };
            rows.push(EventRow {
                seq,
                ring: ring_idx,
                tid: meta & 0xFFFF_FFFF,
                kind,
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
            });
        }
    }
    rows.sort_by_key(|r| r.seq);
    rows
}

/// Zeroes every ring (tests only — real runs never clear forensics).
pub fn reset() {
    for ring in &RINGS {
        ring.head.store(0, Ordering::Relaxed);
        for slot in &ring.slots {
            slot.seq.store(0, Ordering::Relaxed);
        }
    }
}

/// Dumps the rings to `<dump_dir>/<label>.crash.jsonl` and returns the
/// path. The file is overwritten: the newest crash wins, keyed by label.
pub fn dump(reason: &str) -> std::io::Result<PathBuf> {
    let dir = dump_dir_cell()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let label = label_cell()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    std::fs::create_dir_all(&dir)?;
    let rows = events();
    let mut out = String::with_capacity(64 + rows.len() * 64);
    let clean_reason: String = reason
        .chars()
        .map(|c| {
            if c.is_control() || c == '"' || c == '\\' {
                '_'
            } else {
                c
            }
        })
        .collect();
    out.push_str(&format!(
        "{{\"blackbox\": \"dump\", \"reason\": \"{clean_reason}\", \"label\": \"{label}\", \"events\": {}}}\n",
        rows.len()
    ));
    for r in rows {
        out.push_str(&format!(
            "{{\"seq\": {}, \"ring\": {}, \"tid\": {}, \"kind\": \"{}\", \"a\": {}, \"b\": {}}}\n",
            r.seq,
            r.ring,
            r.tid,
            r.kind.name(),
            r.a,
            r.b
        ));
    }
    let path = dir.join(format!("{label}.crash.jsonl"));
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Installs (once per process) a panic hook that dumps the rings before
/// delegating to the previous hook, so any panic — test assert, worker
/// thread, proptest shrink — leaves a `.crash.jsonl` behind.
pub fn install_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Best-effort: a failing dump must never mask the panic.
            if let Ok(path) = dump("panic") {
                eprintln!("[blackbox] flight recorder dumped to {}", path.display());
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The rings are process-global; tests that reset or dump them
    /// serialize here.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: StdMutex<()> = StdMutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dylect-blackbox-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn kind_indices_are_dense_and_names_unique() {
        let mut names = std::collections::BTreeSet::new();
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            assert_eq!(kind.idx(), i);
            assert!(names.insert(kind.name()), "dup name {}", kind.name());
        }
        assert_eq!(names.len(), NKINDS);
    }

    #[test]
    fn events_come_back_in_sequence_order_with_payload() {
        let _g = lock();
        reset();
        record(EventKind::RunStart, 0xAB, 2);
        record(EventKind::BatchRetire, 256, 256);
        record(EventKind::WindowDigest, 1, 0xFEED);
        let rows = events();
        assert_eq!(rows.len(), 3);
        assert!(rows.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(rows[0].kind, EventKind::RunStart);
        assert_eq!((rows[2].a, rows[2].b), (1, 0xFEED));
        reset();
    }

    #[test]
    fn ring_overwrites_oldest_beyond_capacity() {
        let _g = lock();
        reset();
        // All from one thread => one ring; overfill it by 10.
        for i in 0..(RING_ENTRIES as u64 + 10) {
            record(EventKind::Mark, i, 0);
        }
        let rows = events();
        assert_eq!(rows.len(), RING_ENTRIES, "bounded, never growing");
        // The survivors are the most recent RING_ENTRIES events.
        let min_a = rows.iter().map(|r| r.a).min().unwrap();
        assert_eq!(min_a, 10);
        reset();
    }

    #[test]
    fn dump_writes_a_header_and_every_event() {
        let _g = lock();
        reset();
        let dir = temp_dir("dump");
        set_dump_dir(dir.clone());
        set_label("omnetpp/dylect/high");
        record(EventKind::DigestMismatch, 7, 28672);
        let path = dump("digest-mismatch window 7").unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "omnetpp_dylect_high.crash.jsonl",
            "label sanitized into the filename"
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("\"blackbox\": \"dump\""), "{header}");
        assert!(header.contains("digest-mismatch window 7"), "{header}");
        assert!(
            text.contains("\"kind\": \"digest_mismatch\", \"a\": 7, \"b\": 28672"),
            "{text}"
        );
        set_dump_dir(PathBuf::from("results/blackbox"));
        std::fs::remove_dir_all(&dir).ok();
        reset();
    }

    /// The acceptance-criteria test: a panic in a test harness leaves a
    /// non-empty blackbox dump behind.
    #[test]
    fn panic_hook_leaves_a_nonempty_crash_dump() {
        let _g = lock();
        reset();
        let dir = temp_dir("panic");
        set_dump_dir(dir.clone());
        set_label("panicking-harness");
        record(EventKind::BatchRetire, 256, 512);
        install_panic_hook();
        let result = std::panic::catch_unwind(|| {
            panic!("deliberate test panic");
        });
        assert!(result.is_err());
        let path = dir.join("panicking-harness.crash.jsonl");
        let text = std::fs::read_to_string(&path).expect("panic hook wrote a dump");
        assert!(!text.is_empty());
        assert!(text.contains("\"reason\": \"panic\""), "{text}");
        assert!(text.contains("\"kind\": \"batch_retire\""), "{text}");
        set_dump_dir(PathBuf::from("results/blackbox"));
        std::fs::remove_dir_all(&dir).ok();
        reset();
    }
}
