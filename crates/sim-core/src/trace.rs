//! Trace vocabulary: the memory-operation stream workloads feed to cores.

use crate::addr::VirtAddr;

/// One memory instruction in a workload trace.
///
/// `work` counts the non-memory instructions the core executes before this
/// operation (they retire at full pipeline width); `dep_on_prev` marks a
/// pointer-chasing dependency — the access cannot issue until the previous
/// memory operation's value has returned, which is what makes irregular
/// workloads latency-bound rather than bandwidth-bound.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MemOp {
    /// Virtual byte address accessed.
    pub vaddr: VirtAddr,
    /// Store (true) or load (false).
    pub write: bool,
    /// Non-memory instructions preceding this operation.
    pub work: u16,
    /// Whether this access depends on the previous access's result.
    pub dep_on_prev: bool,
}

impl MemOp {
    /// Convenience constructor for an independent load.
    pub fn load(vaddr: VirtAddr, work: u16) -> Self {
        MemOp {
            vaddr,
            write: false,
            work,
            dep_on_prev: false,
        }
    }

    /// Convenience constructor for an independent store.
    pub fn store(vaddr: VirtAddr, work: u16) -> Self {
        MemOp {
            vaddr,
            write: true,
            work,
            dep_on_prev: false,
        }
    }

    /// Marks this operation as dependent on the previous one.
    pub fn dependent(mut self) -> Self {
        self.dep_on_prev = true;
        self
    }

    /// Total instructions this op contributes (itself + its work).
    pub fn instructions(&self) -> u64 {
        self.work as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let l = MemOp::load(VirtAddr::new(0x40), 10);
        assert!(!l.write);
        assert_eq!(l.instructions(), 11);
        let s = MemOp::store(VirtAddr::new(0x80), 0).dependent();
        assert!(s.write);
        assert!(s.dep_on_prev);
        assert_eq!(s.instructions(), 1);
    }
}
