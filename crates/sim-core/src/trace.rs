//! Trace vocabulary: the memory-operation stream workloads feed to cores.

use crate::addr::VirtAddr;

/// One memory instruction in a workload trace.
///
/// `work` counts the non-memory instructions the core executes before this
/// operation (they retire at full pipeline width); `dep_on_prev` marks a
/// pointer-chasing dependency — the access cannot issue until the previous
/// memory operation's value has returned, which is what makes irregular
/// workloads latency-bound rather than bandwidth-bound.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MemOp {
    /// Virtual byte address accessed.
    pub vaddr: VirtAddr,
    /// Store (true) or load (false).
    pub write: bool,
    /// Non-memory instructions preceding this operation.
    pub work: u16,
    /// Whether this access depends on the previous access's result.
    pub dep_on_prev: bool,
}

impl MemOp {
    /// Convenience constructor for an independent load.
    pub fn load(vaddr: VirtAddr, work: u16) -> Self {
        MemOp {
            vaddr,
            write: false,
            work,
            dep_on_prev: false,
        }
    }

    /// Convenience constructor for an independent store.
    pub fn store(vaddr: VirtAddr, work: u16) -> Self {
        MemOp {
            vaddr,
            write: true,
            work,
            dep_on_prev: false,
        }
    }

    /// Marks this operation as dependent on the previous one.
    pub fn dependent(mut self) -> Self {
        self.dep_on_prev = true;
        self
    }

    /// Total instructions this op contributes (itself + its work).
    pub fn instructions(&self) -> u64 {
        self.work as u64 + 1
    }
}

/// A reusable struct-of-arrays batch of memory operations.
///
/// The simulator's batched run loop pre-generates a few hundred ops at a
/// time into one of these arenas and retires them in a tight loop. The
/// arrays are parallel (index `i` across all of them is one op); `clear`
/// keeps the allocations, so steady-state batching never touches the heap.
#[derive(Clone, Debug, Default)]
pub struct OpBatch {
    /// Virtual byte addresses.
    vaddrs: Vec<u64>,
    /// Non-memory instructions preceding each op.
    works: Vec<u16>,
    /// Packed flags: bit 0 = write, bit 1 = dep_on_prev.
    flags: Vec<u8>,
}

impl OpBatch {
    /// An empty batch with capacity for `n` ops.
    pub fn with_capacity(n: usize) -> Self {
        OpBatch {
            vaddrs: Vec::with_capacity(n),
            works: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
        }
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.vaddrs.len()
    }

    /// Whether the batch holds no ops.
    pub fn is_empty(&self) -> bool {
        self.vaddrs.is_empty()
    }

    /// Empties the batch, keeping its allocations for reuse.
    pub fn clear(&mut self) {
        self.vaddrs.clear();
        self.works.clear();
        self.flags.clear();
    }

    /// Appends an op.
    #[inline]
    pub fn push(&mut self, op: MemOp) {
        self.vaddrs.push(op.vaddr.raw());
        self.works.push(op.work);
        self.flags
            .push(op.write as u8 | (op.dep_on_prev as u8) << 1);
    }

    /// Reassembles op `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> MemOp {
        let flags = self.flags[i];
        MemOp {
            vaddr: VirtAddr::new(self.vaddrs[i]),
            write: flags & 1 != 0,
            work: self.works[i],
            dep_on_prev: flags & 2 != 0,
        }
    }

    /// Iterates over the ops in order.
    pub fn iter(&self) -> impl Iterator<Item = MemOp> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Total instructions represented by the batch (each op is itself one
    /// instruction plus its preceding non-memory work).
    pub fn total_instructions(&self) -> u64 {
        self.len() as u64 + self.works.iter().map(|&w| w as u64).sum::<u64>()
    }

    /// Number of stores in the batch.
    pub fn stores(&self) -> u64 {
        self.flags.iter().map(|&f| (f & 1) as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_batch_round_trips_and_reuses_storage() {
        let mut b = OpBatch::with_capacity(4);
        assert!(b.is_empty());
        let ops = [
            MemOp::load(VirtAddr::new(0x40), 10),
            MemOp::store(VirtAddr::new(0x80), 3).dependent(),
        ];
        for op in ops {
            b.push(op);
        }
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(0), ops[0]);
        assert_eq!(b.get(1), ops[1]);
        assert_eq!(b.iter().collect::<Vec<_>>(), ops);
        b.clear();
        assert!(b.is_empty());
        b.push(ops[1]);
        assert_eq!(b.get(0), ops[1]);
    }

    #[test]
    fn constructors() {
        let l = MemOp::load(VirtAddr::new(0x40), 10);
        assert!(!l.write);
        assert_eq!(l.instructions(), 11);
        let s = MemOp::store(VirtAddr::new(0x80), 0).dependent();
        assert!(s.write);
        assert!(s.dep_on_prev);
        assert_eq!(s.instructions(), 1);
    }
}
