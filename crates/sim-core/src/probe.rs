//! Observability probes: discrete memory-controller events, per-access
//! latency attribution, and sampled request spans.
//!
//! A scheme (TMCC, DyLeCT, …) announces its discrete policy actions —
//! promotions, demotions, expansions, background-compactor work — through a
//! [`ProbeHandle`]. The handle is a nullable reference to an [`EventSink`];
//! the disabled handle is a `None` that every `emit` call branches over and
//! the optimizer folds away, so simulation with telemetry off pays nothing
//! beyond one predictable branch per *event* (not per access).
//!
//! Beyond discrete events, the same handle carries two per-access streams:
//!
//! - [`AccessRecord`]: one retired access's end-to-end latency broken into
//!   named critical-path components ([`AccessComponent`]), keyed by request
//!   class, memory level, and translation path. Records are *conservative*:
//!   the component cycles sum exactly to the end-to-end latency (a residual
//!   [`AccessComponent::Other`] absorbs anything unattributed).
//! - [`SpanRecord`]: begin/end phase pairs of deterministically sampled
//!   requests (1-in-N), so a sampled request's journey through
//!   MC → CTE cache → expansion → DRAM is visible on a trace timeline.
//!
//! The sink lives behind `Rc<RefCell<…>>`: the simulator is single-threaded
//! and several memory controllers may feed one journal. Cloning a handle
//! (or a scheme holding one) shares the sink.
//!
//! # Example
//!
//! ```
//! use std::cell::RefCell;
//! use std::rc::Rc;
//! use dylect_sim_core::probe::{EventSink, McEvent, ProbeHandle};
//! use dylect_sim_core::Time;
//!
//! #[derive(Default)]
//! struct CountSink(u64);
//! impl EventSink for CountSink {
//!     fn record(&mut self, _now: Time, _event: McEvent, _page: u64) {
//!         self.0 += 1;
//!     }
//! }
//!
//! let sink = Rc::new(RefCell::new(CountSink::default()));
//! let probe = ProbeHandle::new(sink.clone());
//! probe.emit(Time::ZERO, McEvent::Promotion, 42);
//! assert_eq!(sink.borrow().0, 1);
//! ProbeHandle::disabled().emit(Time::ZERO, McEvent::Demotion, 7); // no-op
//! ```

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::time::Time;

/// A discrete memory-controller event worth journaling.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum McEvent {
    /// ML1→ML0: a page switched to a short CTE (DyLeCT).
    Promotion,
    /// ML0→ML1: a page switched back to a long CTE (DyLeCT).
    Demotion,
    /// ML2→ML1: a compressed page was expanded on demand.
    Expansion,
    /// A background-compactor pass compressed a page back to ML2.
    Compaction,
    /// A page was relocated to make room for a promotion.
    Displacement,
}

impl McEvent {
    /// All events, in display order.
    pub const ALL: [McEvent; 5] = [
        McEvent::Promotion,
        McEvent::Demotion,
        McEvent::Expansion,
        McEvent::Compaction,
        McEvent::Displacement,
    ];

    /// Stable lowercase name (export formats key on this).
    pub fn name(self) -> &'static str {
        match self {
            McEvent::Promotion => "promotion",
            McEvent::Demotion => "demotion",
            McEvent::Expansion => "expansion",
            McEvent::Compaction => "compaction",
            McEvent::Displacement => "displacement",
        }
    }
}

impl fmt::Display for McEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a DRAM request exists. Lives here (not in the DRAM crate) so the
/// attribution layer can key histograms on it; `dylect-dram` re-exports it,
/// which is where most of the workspace imports it from.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RequestClass {
    /// A core's demand read (the latency-critical path).
    Demand,
    /// A dirty-line writeback.
    Writeback,
    /// A CTE (translation metadata) block fetch.
    CteFetch,
    /// Page movement for promotion/expansion/displacement.
    Migration,
    /// Background (de)compression traffic.
    Compression,
    /// A page-table walk access.
    PageWalk,
    /// Counter/metadata maintenance traffic.
    Metadata,
}

impl RequestClass {
    /// All classes, in display order.
    pub const ALL: [RequestClass; 7] = [
        RequestClass::Demand,
        RequestClass::Writeback,
        RequestClass::CteFetch,
        RequestClass::Migration,
        RequestClass::Compression,
        RequestClass::PageWalk,
        RequestClass::Metadata,
    ];

    /// Dense index into per-class arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name (export formats key on this).
    pub fn name(self) -> &'static str {
        match self {
            RequestClass::Demand => "demand",
            RequestClass::Writeback => "writeback",
            RequestClass::CteFetch => "cte_fetch",
            RequestClass::Migration => "migration",
            RequestClass::Compression => "compression",
            RequestClass::PageWalk => "page_walk",
            RequestClass::Metadata => "metadata",
        }
    }
}

impl fmt::Display for RequestClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which layer observed an access. Core-side records cover the retired
/// instruction (TLB walk + cache hierarchy); memory-side records cover one
/// shared-memory (L3 + MC + DRAM) access. Keeping the scopes separate keeps
/// the cycle-accounting table honest: the two views overlap and must never
/// be summed together.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessScope {
    /// Observed at a core's retirement (per memory instruction).
    Core,
    /// Observed at the shared memory backend (per L3/MC access).
    Mem,
}

impl AccessScope {
    /// All scopes, in display order.
    pub const ALL: [AccessScope; 2] = [AccessScope::Core, AccessScope::Mem];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            AccessScope::Core => "core",
            AccessScope::Mem => "mem",
        }
    }
}

/// How the MC resolved the physical→machine translation for an access.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TranslationPath {
    /// Short (2-bit) CTE served from the CTE cache (DyLeCT ML0 fast path).
    ShortCteHit,
    /// Long (8 B) CTE served from the CTE cache.
    LongCteHit,
    /// CTE cache miss: translation metadata fetched from DRAM.
    CteMiss,
    /// No MC translation involved (baseline scheme, or not applicable).
    #[default]
    None,
}

impl TranslationPath {
    /// All paths, in display order.
    pub const ALL: [TranslationPath; 4] = [
        TranslationPath::ShortCteHit,
        TranslationPath::LongCteHit,
        TranslationPath::CteMiss,
        TranslationPath::None,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            TranslationPath::ShortCteHit => "short_cte_hit",
            TranslationPath::LongCteHit => "long_cte_hit",
            TranslationPath::CteMiss => "cte_miss",
            TranslationPath::None => "none",
        }
    }
}

/// Which memory level the accessed page lived in when the access arrived.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemLevel {
    /// Hot, uncompressed, short-CTE (DyLeCT's huge-page-like level).
    Ml0,
    /// Warm, uncompressed, long-CTE.
    Ml1,
    /// Cold, compressed.
    Ml2,
    /// Not applicable (baseline scheme, or non-data traffic).
    #[default]
    None,
}

impl MemLevel {
    /// All levels, in display order.
    pub const ALL: [MemLevel; 4] = [MemLevel::Ml0, MemLevel::Ml1, MemLevel::Ml2, MemLevel::None];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            MemLevel::Ml0 => "ml0",
            MemLevel::Ml1 => "ml1",
            MemLevel::Ml2 => "ml2",
            MemLevel::None => "none",
        }
    }
}

/// A named critical-path component of one access's latency.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessComponent {
    /// Virtual→physical: TLB miss handling / page-table walk (core scope).
    TlbWalk,
    /// Cache-hierarchy lookup time (L1/L2 at core scope, L3 at mem scope).
    CacheLookup,
    /// Physical→machine translation served by the CTE cache.
    CteCacheHit,
    /// Physical→machine translation fetched from DRAM (CTE miss).
    CteFetch,
    /// Decompression (DEFLATE ASIC) on the critical path.
    Decompression,
    /// Page movement (expansion/compaction/displacement) on the critical
    /// path — migration interference.
    Migration,
    /// Time the demand DRAM request waited before service.
    DramQueue,
    /// DRAM array + bus service time of the demand request.
    DramService,
    /// Residual cycles not attributed to a named component. Guarantees the
    /// conservation invariant: components always sum to the total.
    Other,
}

impl AccessComponent {
    /// All components, in display order.
    pub const ALL: [AccessComponent; 9] = [
        AccessComponent::TlbWalk,
        AccessComponent::CacheLookup,
        AccessComponent::CteCacheHit,
        AccessComponent::CteFetch,
        AccessComponent::Decompression,
        AccessComponent::Migration,
        AccessComponent::DramQueue,
        AccessComponent::DramService,
        AccessComponent::Other,
    ];

    /// Dense index into per-component arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name (export formats key on this).
    pub fn name(self) -> &'static str {
        match self {
            AccessComponent::TlbWalk => "tlb_walk",
            AccessComponent::CacheLookup => "cache_lookup",
            AccessComponent::CteCacheHit => "cte_cache_hit",
            AccessComponent::CteFetch => "cte_fetch",
            AccessComponent::Decompression => "decompression",
            AccessComponent::Migration => "migration",
            AccessComponent::DramQueue => "dram_queue",
            AccessComponent::DramService => "dram_service",
            AccessComponent::Other => "other",
        }
    }
}

/// One retired access's attributed latency.
///
/// Built via [`AccessRecord::new`], which computes the residual
/// [`AccessComponent::Other`] so that `components` always sums to `total`
/// (the conservation invariant the attribution layer asserts on).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AccessRecord {
    /// Observing layer.
    pub scope: AccessScope,
    /// Why the access exists.
    pub class: RequestClass,
    /// Memory level of the page at access time.
    pub level: MemLevel,
    /// How translation was resolved.
    pub path: TranslationPath,
    /// Simulated time the access started.
    pub start: Time,
    /// End-to-end latency.
    pub total: Time,
    /// Per-component cycles, indexed by [`AccessComponent::index`].
    pub components: [Time; AccessComponent::ALL.len()],
}

impl AccessRecord {
    /// Builds a record from the named component durations, deriving the
    /// `Other` residual so the conservation invariant holds by
    /// construction.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the named components do not exceed `total`
    /// (release builds clamp the residual at zero instead).
    pub fn new(
        scope: AccessScope,
        class: RequestClass,
        level: MemLevel,
        path: TranslationPath,
        start: Time,
        total: Time,
        named: &[(AccessComponent, Time)],
    ) -> AccessRecord {
        let mut components = [Time::ZERO; AccessComponent::ALL.len()];
        let mut attributed = Time::ZERO;
        for &(c, t) in named {
            components[c.index()] += t;
            attributed += t;
        }
        debug_assert!(
            attributed <= total,
            "attributed {attributed:?} exceeds total {total:?}"
        );
        components[AccessComponent::Other.index()] += total.saturating_sub(attributed);
        AccessRecord {
            scope,
            class,
            level,
            path,
            start,
            total,
            components,
        }
    }

    /// Sum of all component cycles (equals `total` by construction).
    pub fn attributed(&self) -> Time {
        self.components.iter().copied().sum()
    }
}

/// Phase of a sampled request's journey, for begin/end trace spans.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanPhase {
    /// The whole request, arrival to data-ready.
    Request,
    /// Physical→machine translation (CTE cache / CTE fetch).
    Translate,
    /// On-demand expansion (decompression + page movement).
    Expand,
    /// The demand block's DRAM access (queue + service).
    Dram,
}

impl SpanPhase {
    /// All phases, in display order.
    pub const ALL: [SpanPhase; 4] = [
        SpanPhase::Request,
        SpanPhase::Translate,
        SpanPhase::Expand,
        SpanPhase::Dram,
    ];

    /// Stable lowercase name (trace export keys on this).
    pub fn name(self) -> &'static str {
        match self {
            SpanPhase::Request => "request",
            SpanPhase::Translate => "translate",
            SpanPhase::Expand => "expand",
            SpanPhase::Dram => "dram",
        }
    }
}

/// One phase of one sampled request: a begin/end pair on the trace
/// timeline.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Sample sequence number (shared by all phases of one request).
    pub id: u64,
    /// Memory controller serving the request.
    pub mc: u32,
    /// Which phase this span covers.
    pub phase: SpanPhase,
    /// Phase start time.
    pub start: Time,
    /// Phase end time (`end >= start`).
    pub end: Time,
    /// The OS page concerned.
    pub page: u64,
}

/// Which kind of translation-table block a CTE-cache operation concerns.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CteBlockKind {
    /// A pre-gathered short-CTE block (64 B covering up to 1 MB — DyLeCT's
    /// reach multiplier).
    Pregathered,
    /// A unified / long-CTE table block.
    Unified,
}

impl CteBlockKind {
    /// All kinds, in display order.
    pub const ALL: [CteBlockKind; 2] = [CteBlockKind::Pregathered, CteBlockKind::Unified];

    /// Dense index into per-kind arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name (export formats key on this).
    pub fn name(self) -> &'static str {
        match self {
            CteBlockKind::Pregathered => "pregathered",
            CteBlockKind::Unified => "unified",
        }
    }
}

/// What the real CTE cache did for one probe-visible operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CteOp {
    /// A demand lookup on the translation critical path. `hit` is the real
    /// cache's outcome; `fill_on_miss` says whether the scheme's policy
    /// fills the block after a miss (DyLeCT deliberately skips caching
    /// unified blocks for ML0 pages).
    Lookup {
        /// Whether the real cache hit.
        hit: bool,
        /// Whether the real policy inserts the block after this miss.
        fill_on_miss: bool,
    },
    /// A metadata update that refreshes the block if resident but never
    /// allocates (`update_table` / `update_cte` write paths).
    Touch,
}

/// One CTE-cache operation as seen by the real cache, mirrored to the
/// shadow tag arrays. Observation-only: emitted *after* the real cache has
/// acted, carrying its outcome.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CteRecord {
    /// Block kind (pre-gathered vs unified).
    pub kind: CteBlockKind,
    /// What happened at the real cache.
    pub op: CteOp,
    /// The cache block key (`table address / block bytes`), unique per
    /// block across both kinds.
    pub key: u64,
}

/// Receives emitted events. Implementations must be observation-only: a
/// sink may never feed information back into the simulation, which is what
/// keeps telemetry-on and telemetry-off runs bit-identical.
///
/// The per-access methods default to no-ops so sinks that only care about
/// discrete events (and pre-existing implementations) need not change.
pub trait EventSink {
    /// Records one event at simulated time `now` concerning OS page `page`.
    fn record(&mut self, now: Time, event: McEvent, page: u64);

    /// Records one retired access's attributed latency.
    fn record_access(&mut self, _rec: &AccessRecord) {}

    /// Records one phase span of a sampled request.
    fn record_span(&mut self, _span: &SpanRecord) {}

    /// Records one CTE-cache operation (lookup or metadata touch).
    fn record_cte(&mut self, _rec: &CteRecord) {}
}

/// A nullable, shareable reference to an [`EventSink`].
#[derive(Clone, Default)]
pub struct ProbeHandle(Option<Rc<RefCell<dyn EventSink>>>);

impl ProbeHandle {
    /// The disabled handle: every [`ProbeHandle::emit`] is a no-op.
    pub const fn disabled() -> Self {
        ProbeHandle(None)
    }

    /// Wraps a sink.
    pub fn new(sink: Rc<RefCell<dyn EventSink>>) -> Self {
        ProbeHandle(Some(sink))
    }

    /// Whether events reach a sink.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Forwards one event to the sink, if any.
    #[inline]
    pub fn emit(&self, now: Time, event: McEvent, page: u64) {
        if let Some(sink) = &self.0 {
            sink.borrow_mut().record(now, event, page);
        }
    }

    /// Forwards one attributed access to the sink, if any.
    #[inline]
    pub fn emit_access(&self, rec: &AccessRecord) {
        if let Some(sink) = &self.0 {
            sink.borrow_mut().record_access(rec);
        }
    }

    /// Forwards one sampled-request span to the sink, if any.
    #[inline]
    pub fn emit_span(&self, span: &SpanRecord) {
        if let Some(sink) = &self.0 {
            sink.borrow_mut().record_span(span);
        }
    }

    /// Forwards one CTE-cache operation to the sink, if any.
    #[inline]
    pub fn emit_cte(&self, rec: &CteRecord) {
        if let Some(sink) = &self.0 {
            sink.borrow_mut().record_cte(rec);
        }
    }
}

impl fmt::Debug for ProbeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_enabled() {
            "ProbeHandle(enabled)"
        } else {
            "ProbeHandle(disabled)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct VecSink(Vec<(Time, McEvent, u64)>);

    impl EventSink for VecSink {
        fn record(&mut self, now: Time, event: McEvent, page: u64) {
            self.0.push((now, event, page));
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let p = ProbeHandle::disabled();
        assert!(!p.is_enabled());
        p.emit(Time::ZERO, McEvent::Expansion, 1); // must not panic
    }

    #[test]
    fn enabled_handle_forwards_in_order() {
        let sink = Rc::new(RefCell::new(VecSink::default()));
        let p = ProbeHandle::new(sink.clone());
        assert!(p.is_enabled());
        p.emit(Time::from_ns(1.0), McEvent::Promotion, 10);
        p.emit(Time::from_ns(2.0), McEvent::Compaction, 11);
        let got = &sink.borrow().0;
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (Time::from_ns(1.0), McEvent::Promotion, 10));
        assert_eq!(got[1], (Time::from_ns(2.0), McEvent::Compaction, 11));
    }

    #[test]
    fn clones_share_the_sink() {
        let sink = Rc::new(RefCell::new(VecSink::default()));
        let a = ProbeHandle::new(sink.clone());
        let b = a.clone();
        a.emit(Time::ZERO, McEvent::Demotion, 1);
        b.emit(Time::ZERO, McEvent::Demotion, 2);
        assert_eq!(sink.borrow().0.len(), 2);
    }

    #[test]
    fn event_names_are_stable() {
        // Export formats and `dylect-stats` key on these strings.
        let names: Vec<&str> = McEvent::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            [
                "promotion",
                "demotion",
                "expansion",
                "compaction",
                "displacement"
            ]
        );
    }

    #[test]
    fn attribution_names_are_stable() {
        // The latency export and `dylect-stats` key on these strings.
        let classes: Vec<&str> = RequestClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            classes,
            [
                "demand",
                "writeback",
                "cte_fetch",
                "migration",
                "compression",
                "page_walk",
                "metadata"
            ]
        );
        let comps: Vec<&str> = AccessComponent::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            comps,
            [
                "tlb_walk",
                "cache_lookup",
                "cte_cache_hit",
                "cte_fetch",
                "decompression",
                "migration",
                "dram_queue",
                "dram_service",
                "other"
            ]
        );
        for (i, c) in AccessComponent::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, c) in RequestClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn access_record_is_conservative_by_construction() {
        let rec = AccessRecord::new(
            AccessScope::Mem,
            RequestClass::Demand,
            MemLevel::Ml2,
            TranslationPath::CteMiss,
            Time::ZERO,
            Time::from_ps(1000),
            &[
                (AccessComponent::CteFetch, Time::from_ps(300)),
                (AccessComponent::DramService, Time::from_ps(450)),
            ],
        );
        assert_eq!(rec.attributed(), rec.total);
        assert_eq!(
            rec.components[AccessComponent::Other.index()],
            Time::from_ps(250)
        );
    }

    #[test]
    fn access_and_span_emission_reaches_the_sink() {
        #[derive(Default)]
        struct CountingSink {
            accesses: u64,
            spans: u64,
        }
        impl EventSink for CountingSink {
            fn record(&mut self, _now: Time, _event: McEvent, _page: u64) {}
            fn record_access(&mut self, _rec: &AccessRecord) {
                self.accesses += 1;
            }
            fn record_span(&mut self, _span: &SpanRecord) {
                self.spans += 1;
            }
        }
        let sink = Rc::new(RefCell::new(CountingSink::default()));
        let p = ProbeHandle::new(sink.clone());
        let rec = AccessRecord::new(
            AccessScope::Core,
            RequestClass::Demand,
            MemLevel::None,
            TranslationPath::None,
            Time::ZERO,
            Time::from_ps(10),
            &[],
        );
        p.emit_access(&rec);
        p.emit_span(&SpanRecord {
            id: 0,
            mc: 0,
            phase: SpanPhase::Request,
            start: Time::ZERO,
            end: Time::from_ps(10),
            page: 0,
        });
        ProbeHandle::disabled().emit_access(&rec); // no-op
        assert_eq!(sink.borrow().accesses, 1);
        assert_eq!(sink.borrow().spans, 1);
    }

    #[test]
    fn cte_kind_names_are_stable() {
        // The shadow export and `dylect-stats` key on these strings.
        let names: Vec<&str> = CteBlockKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["pregathered", "unified"]);
        for (i, k) in CteBlockKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn cte_emission_reaches_the_sink() {
        #[derive(Default)]
        struct CteSink(Vec<CteRecord>);
        impl EventSink for CteSink {
            fn record(&mut self, _now: Time, _event: McEvent, _page: u64) {}
            fn record_cte(&mut self, rec: &CteRecord) {
                self.0.push(*rec);
            }
        }
        let sink = Rc::new(RefCell::new(CteSink::default()));
        let p = ProbeHandle::new(sink.clone());
        let rec = CteRecord {
            kind: CteBlockKind::Pregathered,
            op: CteOp::Lookup {
                hit: false,
                fill_on_miss: true,
            },
            key: 7,
        };
        p.emit_cte(&rec);
        p.emit_cte(&CteRecord {
            kind: CteBlockKind::Unified,
            op: CteOp::Touch,
            key: 8,
        });
        ProbeHandle::disabled().emit_cte(&rec); // no-op
        assert_eq!(sink.borrow().0.len(), 2);
        assert_eq!(sink.borrow().0[0], rec);
    }

    #[test]
    fn default_sink_methods_are_no_ops() {
        // A legacy sink implementing only `record` still compiles and
        // silently ignores the per-access streams.
        let sink = Rc::new(RefCell::new(VecSink::default()));
        let p = ProbeHandle::new(sink.clone());
        let rec = AccessRecord::new(
            AccessScope::Mem,
            RequestClass::Metadata,
            MemLevel::None,
            TranslationPath::None,
            Time::ZERO,
            Time::ZERO,
            &[],
        );
        p.emit_access(&rec);
        assert!(sink.borrow().0.is_empty());
    }
}
