//! Observability probes: discrete memory-controller events.
//!
//! A scheme (TMCC, DyLeCT, …) announces its discrete policy actions —
//! promotions, demotions, expansions, background-compactor work — through a
//! [`ProbeHandle`]. The handle is a nullable reference to an [`EventSink`];
//! the disabled handle is a `None` that every `emit` call branches over and
//! the optimizer folds away, so simulation with telemetry off pays nothing
//! beyond one predictable branch per *event* (not per access).
//!
//! The sink lives behind `Rc<RefCell<…>>`: the simulator is single-threaded
//! and several memory controllers may feed one journal. Cloning a handle
//! (or a scheme holding one) shares the sink.
//!
//! # Example
//!
//! ```
//! use std::cell::RefCell;
//! use std::rc::Rc;
//! use dylect_sim_core::probe::{EventSink, McEvent, ProbeHandle};
//! use dylect_sim_core::Time;
//!
//! #[derive(Default)]
//! struct CountSink(u64);
//! impl EventSink for CountSink {
//!     fn record(&mut self, _now: Time, _event: McEvent, _page: u64) {
//!         self.0 += 1;
//!     }
//! }
//!
//! let sink = Rc::new(RefCell::new(CountSink::default()));
//! let probe = ProbeHandle::new(sink.clone());
//! probe.emit(Time::ZERO, McEvent::Promotion, 42);
//! assert_eq!(sink.borrow().0, 1);
//! ProbeHandle::disabled().emit(Time::ZERO, McEvent::Demotion, 7); // no-op
//! ```

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::time::Time;

/// A discrete memory-controller event worth journaling.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum McEvent {
    /// ML1→ML0: a page switched to a short CTE (DyLeCT).
    Promotion,
    /// ML0→ML1: a page switched back to a long CTE (DyLeCT).
    Demotion,
    /// ML2→ML1: a compressed page was expanded on demand.
    Expansion,
    /// A background-compactor pass compressed a page back to ML2.
    Compaction,
    /// A page was relocated to make room for a promotion.
    Displacement,
}

impl McEvent {
    /// All events, in display order.
    pub const ALL: [McEvent; 5] = [
        McEvent::Promotion,
        McEvent::Demotion,
        McEvent::Expansion,
        McEvent::Compaction,
        McEvent::Displacement,
    ];

    /// Stable lowercase name (export formats key on this).
    pub fn name(self) -> &'static str {
        match self {
            McEvent::Promotion => "promotion",
            McEvent::Demotion => "demotion",
            McEvent::Expansion => "expansion",
            McEvent::Compaction => "compaction",
            McEvent::Displacement => "displacement",
        }
    }
}

impl fmt::Display for McEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Receives emitted events. Implementations must be observation-only: a
/// sink may never feed information back into the simulation, which is what
/// keeps telemetry-on and telemetry-off runs bit-identical.
pub trait EventSink {
    /// Records one event at simulated time `now` concerning OS page `page`.
    fn record(&mut self, now: Time, event: McEvent, page: u64);
}

/// A nullable, shareable reference to an [`EventSink`].
#[derive(Clone, Default)]
pub struct ProbeHandle(Option<Rc<RefCell<dyn EventSink>>>);

impl ProbeHandle {
    /// The disabled handle: every [`ProbeHandle::emit`] is a no-op.
    pub const fn disabled() -> Self {
        ProbeHandle(None)
    }

    /// Wraps a sink.
    pub fn new(sink: Rc<RefCell<dyn EventSink>>) -> Self {
        ProbeHandle(Some(sink))
    }

    /// Whether events reach a sink.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Forwards one event to the sink, if any.
    #[inline]
    pub fn emit(&self, now: Time, event: McEvent, page: u64) {
        if let Some(sink) = &self.0 {
            sink.borrow_mut().record(now, event, page);
        }
    }
}

impl fmt::Debug for ProbeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_enabled() {
            "ProbeHandle(enabled)"
        } else {
            "ProbeHandle(disabled)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct VecSink(Vec<(Time, McEvent, u64)>);

    impl EventSink for VecSink {
        fn record(&mut self, now: Time, event: McEvent, page: u64) {
            self.0.push((now, event, page));
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let p = ProbeHandle::disabled();
        assert!(!p.is_enabled());
        p.emit(Time::ZERO, McEvent::Expansion, 1); // must not panic
    }

    #[test]
    fn enabled_handle_forwards_in_order() {
        let sink = Rc::new(RefCell::new(VecSink::default()));
        let p = ProbeHandle::new(sink.clone());
        assert!(p.is_enabled());
        p.emit(Time::from_ns(1.0), McEvent::Promotion, 10);
        p.emit(Time::from_ns(2.0), McEvent::Compaction, 11);
        let got = &sink.borrow().0;
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (Time::from_ns(1.0), McEvent::Promotion, 10));
        assert_eq!(got[1], (Time::from_ns(2.0), McEvent::Compaction, 11));
    }

    #[test]
    fn clones_share_the_sink() {
        let sink = Rc::new(RefCell::new(VecSink::default()));
        let a = ProbeHandle::new(sink.clone());
        let b = a.clone();
        a.emit(Time::ZERO, McEvent::Demotion, 1);
        b.emit(Time::ZERO, McEvent::Demotion, 2);
        assert_eq!(sink.borrow().0.len(), 2);
    }

    #[test]
    fn event_names_are_stable() {
        // Export formats and `dylect-stats` key on these strings.
        let names: Vec<&str> = McEvent::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            [
                "promotion",
                "demotion",
                "expansion",
                "compaction",
                "displacement"
            ]
        );
    }
}
