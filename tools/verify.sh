#!/usr/bin/env bash
# Tier-1 verification: the hermetic build, the full test suite, and
# formatting. Runs fully offline — a failure here means a fresh checkout
# without network access is broken.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets --offline -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "verify: OK"
