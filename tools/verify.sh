#!/usr/bin/env bash
# Tier-1 verification: the hermetic build, the full test suite, and
# formatting. Runs fully offline — a failure here means a fresh checkout
# without network access is broken.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets --offline -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "== telemetry smoke: deterministic latency exports diff clean"
# Run the same small deterministic simulation twice with attribution and
# span sampling enabled; every export (series, events, latency histograms,
# trace spans) must be byte-identically reproducible, which dylect-stats
# checks at zero tolerance (exit 1 = drift, exit 3 = missing metric).
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
for run in a b; do
    DYLECT_SPAN_SAMPLE=64 DYLECT_QUICK=1 DYLECT_JOBS=2 \
        cargo run -q --offline --release -p dylect-bench \
        --bin fig_latency_breakdown -- --out "$SMOKE/$run" >/dev/null
done
for f in "$SMOKE"/a/*.jsonl; do
    cargo run -q --offline --release -p dylect-telemetry --bin dylect-stats -- \
        diff "$f" "$SMOKE/b/$(basename "$f")" >/dev/null \
        || { echo "telemetry smoke: $(basename "$f") not reproducible"; exit 1; }
done
for f in "$SMOKE"/a/*.trace.json; do
    cmp -s "$f" "$SMOKE/b/$(basename "$f")" \
        || { echo "telemetry smoke: $(basename "$f") not reproducible"; exit 1; }
done
echo "telemetry smoke: OK"

echo "== shadow smoke: counterfactual exports diff clean"
# Same reproducibility bar for the shadow subsystem: two fig_shadow runs
# (shadow caches, 3C miss classification, page provenance all enabled —
# fig_shadow also asserts compulsory+capacity+conflict == real misses on
# every run) must produce byte-identical exports, including .shadow.jsonl.
for run in a b; do
    DYLECT_SHADOW=1 DYLECT_QUICK=1 DYLECT_JOBS=2 \
        cargo run -q --offline --release -p dylect-bench \
        --bin fig_shadow -- --out "$SMOKE/shadow-$run" >/dev/null
done
for f in "$SMOKE"/shadow-a/*.jsonl; do
    cargo run -q --offline --release -p dylect-telemetry --bin dylect-stats -- \
        diff "$f" "$SMOKE/shadow-b/$(basename "$f")" >/dev/null \
        || { echo "shadow smoke: $(basename "$f") not reproducible"; exit 1; }
done
for f in "$SMOKE"/shadow-a/*.trace.json; do
    cmp -s "$f" "$SMOKE/shadow-b/$(basename "$f")" \
        || { echo "shadow smoke: $(basename "$f") not reproducible"; exit 1; }
done
echo "shadow smoke: OK"

echo "== sharding smoke: worker count leaves the multi-MC ablation byte-identical"
# The multi-MC ablation sweeps 1/2/4 controllers, so DYLECT_JOBS>1 drains
# independent MCs on worker threads *within* each run. Worker count is an
# execution detail; the emitted table must not change by a byte.
DYLECT_QUICK=1 DYLECT_JOBS=1 DYLECT_NO_CACHE=1 \
    cargo run -q --offline --release -p dylect-bench \
    --bin ablation_multimc > "$SMOKE/multimc-seq.tsv"
DYLECT_QUICK=1 DYLECT_JOBS=3 DYLECT_NO_CACHE=1 \
    cargo run -q --offline --release -p dylect-bench \
    --bin ablation_multimc > "$SMOKE/multimc-par.tsv"
cmp -s "$SMOKE/multimc-seq.tsv" "$SMOKE/multimc-par.tsv" \
    || { echo "sharding smoke: worker count changed results"; exit 1; }
echo "sharding smoke: OK"

echo "verify: OK"
