#!/usr/bin/env bash
# Tier-1 verification: the hermetic build, the full test suite, and
# formatting. Runs fully offline — a failure here means a fresh checkout
# without network access is broken.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets --offline -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "== telemetry smoke: deterministic latency exports diff clean"
# Run the same small deterministic simulation twice with attribution and
# span sampling enabled; every export (series, events, latency histograms,
# trace spans) must be byte-identically reproducible, which dylect-stats
# checks at zero tolerance (exit 1 = drift, exit 3 = missing metric).
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
for run in a b; do
    DYLECT_SPAN_SAMPLE=64 DYLECT_QUICK=1 DYLECT_JOBS=2 \
        cargo run -q --offline --release -p dylect-bench \
        --bin fig_latency_breakdown -- --out "$SMOKE/$run" >/dev/null
done
for f in "$SMOKE"/a/*.jsonl; do
    cargo run -q --offline --release -p dylect-telemetry --bin dylect-stats -- \
        diff "$f" "$SMOKE/b/$(basename "$f")" >/dev/null \
        || { echo "telemetry smoke: $(basename "$f") not reproducible"; exit 1; }
done
for f in "$SMOKE"/a/*.trace.json; do
    cmp -s "$f" "$SMOKE/b/$(basename "$f")" \
        || { echo "telemetry smoke: $(basename "$f") not reproducible"; exit 1; }
done
echo "telemetry smoke: OK"

echo "== shadow smoke: counterfactual exports diff clean"
# Same reproducibility bar for the shadow subsystem: two fig_shadow runs
# (shadow caches, 3C miss classification, page provenance all enabled —
# fig_shadow also asserts compulsory+capacity+conflict == real misses on
# every run) must produce byte-identical exports, including .shadow.jsonl.
for run in a b; do
    DYLECT_SHADOW=1 DYLECT_QUICK=1 DYLECT_JOBS=2 \
        cargo run -q --offline --release -p dylect-bench \
        --bin fig_shadow -- --out "$SMOKE/shadow-$run" >/dev/null
done
for f in "$SMOKE"/shadow-a/*.jsonl; do
    cargo run -q --offline --release -p dylect-telemetry --bin dylect-stats -- \
        diff "$f" "$SMOKE/shadow-b/$(basename "$f")" >/dev/null \
        || { echo "shadow smoke: $(basename "$f") not reproducible"; exit 1; }
done
for f in "$SMOKE"/shadow-a/*.trace.json; do
    cmp -s "$f" "$SMOKE/shadow-b/$(basename "$f")" \
        || { echo "shadow smoke: $(basename "$f") not reproducible"; exit 1; }
done
echo "shadow smoke: OK"

echo "== sharding smoke: worker count leaves the multi-MC ablation byte-identical"
# The multi-MC ablation sweeps 1/2/4 controllers, so DYLECT_JOBS>1 drains
# independent MCs on worker threads *within* each run. Worker count is an
# execution detail; the emitted table must not change by a byte.
DYLECT_QUICK=1 DYLECT_JOBS=1 DYLECT_NO_CACHE=1 \
    cargo run -q --offline --release -p dylect-bench \
    --bin ablation_multimc > "$SMOKE/multimc-seq.tsv"
DYLECT_QUICK=1 DYLECT_JOBS=3 DYLECT_NO_CACHE=1 \
    cargo run -q --offline --release -p dylect-bench \
    --bin ablation_multimc > "$SMOKE/multimc-par.tsv"
cmp -s "$SMOKE/multimc-seq.tsv" "$SMOKE/multimc-par.tsv" \
    || { echo "sharding smoke: worker count changed results"; exit 1; }
echo "sharding smoke: OK"

echo "== checkpoint smoke: repeat runs warm-start from a shared checkpoint"
# First run populates DYLECT_CHECKPOINT_DIR (one .ckpt per warmed config);
# the second run must warm-start from those checkpoints instead of
# re-warming, and still emit a byte-identical table. DYLECT_NO_CACHE keeps
# the report cache out of the way so the second run actually simulates.
CKPT="$SMOKE/ckpt"
DYLECT_QUICK=1 DYLECT_NO_CACHE=1 DYLECT_CHECKPOINT_DIR="$CKPT" \
    cargo run -q --offline --release -p dylect-bench \
    --bin ablation_multimc > "$SMOKE/ckpt-cold.tsv" 2> "$SMOKE/ckpt-cold.log"
grep -q "checkpoint saved" "$SMOKE/ckpt-cold.log" \
    || { echo "checkpoint smoke: cold run saved no checkpoint"; exit 1; }
DYLECT_QUICK=1 DYLECT_NO_CACHE=1 DYLECT_CHECKPOINT_DIR="$CKPT" \
    cargo run -q --offline --release -p dylect-bench \
    --bin ablation_multimc > "$SMOKE/ckpt-warm.tsv" 2> "$SMOKE/ckpt-warm.log"
grep -q "warm-started from checkpoint" "$SMOKE/ckpt-warm.log" \
    || { echo "checkpoint smoke: second run did not warm-start"; exit 1; }
cmp -s "$SMOKE/ckpt-cold.tsv" "$SMOKE/ckpt-warm.tsv" \
    || { echo "checkpoint smoke: warm-start changed results"; exit 1; }
echo "checkpoint smoke: OK"

echo "== selfprofile smoke: profiling on, deterministic exports still diff clean"
# Two fig_selfprofile runs with the host profiler armed: the deterministic
# telemetry exports must stay byte-identical (the dual-clock invariant,
# end to end), while the host-side artifacts (.prof.jsonl, dual trace) are
# wall-clock data — existence and renderability are checked, bytes are not.
for run in a b; do
    DYLECT_PROF=1 DYLECT_QUICK=1 DYLECT_JOBS=2 DYLECT_SPAN_SAMPLE=64 \
        cargo run -q --offline --release -p dylect-bench \
        --bin fig_selfprofile -- --out "$SMOKE/sp-$run" >/dev/null
done
for f in "$SMOKE"/sp-a/*.jsonl; do
    case "$f" in *.prof.jsonl) continue ;; esac
    cargo run -q --offline --release -p dylect-telemetry --bin dylect-stats -- \
        diff "$f" "$SMOKE/sp-b/$(basename "$f")" >/dev/null \
        || { echo "selfprofile smoke: $(basename "$f") not reproducible"; exit 1; }
done
for f in "$SMOKE"/sp-a/*.trace.json; do
    case "$f" in *dual.trace.json) continue ;; esac
    cmp -s "$f" "$SMOKE/sp-b/$(basename "$f")" \
        || { echo "selfprofile smoke: $(basename "$f") not reproducible"; exit 1; }
done
[ -s "$SMOKE/sp-a/selfprofile.prof.jsonl" ] \
    || { echo "selfprofile smoke: no .prof.jsonl written"; exit 1; }
[ -s "$SMOKE/sp-a/omnetpp-dylect.dual.trace.json" ] \
    || { echo "selfprofile smoke: no dual-clock trace written"; exit 1; }
# Write to a file rather than piping into grep -q: the early-exit grep
# would SIGPIPE the still-printing dylect-stats, which pipefail then
# reports as a smoke failure.
cargo run -q --offline --release -p dylect-telemetry --bin dylect-stats -- \
    summary "$SMOKE/sp-a/selfprofile.prof.jsonl" > "$SMOKE/sp-summary.out" \
    || { echo "selfprofile smoke: prof summary failed"; exit 1; }
grep -q "^execute_per_op " "$SMOKE/sp-summary.out" \
    || { echo "selfprofile smoke: prof summary did not render phases"; exit 1; }
echo "selfprofile smoke: OK"

echo "== digest smoke: digest-on exports stay byte-identical to digest-off"
# Re-run the first telemetry smoke's workload with state-digest capture
# armed at a fine window: every deterministic export must not move by a
# byte (digests are write-only observability).
DYLECT_DIGEST=4096 \
    DYLECT_SPAN_SAMPLE=64 DYLECT_QUICK=1 DYLECT_JOBS=2 \
    cargo run -q --offline --release -p dylect-bench \
    --bin fig_latency_breakdown -- --out "$SMOKE/dig" >/dev/null
for f in "$SMOKE"/a/*.jsonl; do
    cargo run -q --offline --release -p dylect-telemetry --bin dylect-stats -- \
        diff "$f" "$SMOKE/dig/$(basename "$f")" >/dev/null \
        || { echo "digest smoke: $(basename "$f") changed with digests on"; exit 1; }
done
# A cache-backed matrix run (fig_latency_breakdown bypasses the report
# cache) must leave a .digest.jsonl stream with at least one window
# record next to each report entry.
DCACHE="$SMOKE/dcache"
DYLECT_DIGEST=4096 DYLECT_CACHE_DIR="$DCACHE" DYLECT_QUICK=1 DYLECT_JOBS=2 \
    cargo run -q --offline --release -p dylect-bench \
    --bin ablation_multimc >/dev/null
DIGEST_STREAM=$(ls "$DCACHE"/*.digest.jsonl 2>/dev/null | head -1)
[ -n "$DIGEST_STREAM" ] \
    || { echo "digest smoke: no .digest.jsonl stream in the cache dir"; exit 1; }
grep -q '"digest": "window"' "$DIGEST_STREAM" \
    || { echo "digest smoke: stream has no window records"; exit 1; }
echo "digest smoke: OK"

echo "== bisect smoke: first-divergence bisection localizes an injected fault"
# fig_divergence --bisect injects one spurious L3-miss count at op 6400
# (inside digest window 2 at its 4096-op window) and must localize it
# from the digest streams alone: first to the window, then via op-level
# replay to the exact op and component; the always-on flight recorder
# must dump a non-empty ring on the mismatch. dylect-stats bisect must
# reach the same verdict from the artifacts with its documented exit
# codes (1 = divergence, 0 = identical).
DIV="$SMOKE/divergence"
DYLECT_QUICK=1 cargo run -q --offline --release -p dylect-bench \
    --bin fig_divergence -- --bisect --out "$DIV" > "$SMOKE/bisect.out" \
    || { echo "bisect smoke: fig_divergence --bisect failed"; cat "$SMOKE/bisect.out"; exit 1; }
grep -q "first diverging window: 2 (component cache)" "$SMOKE/bisect.out" \
    || { echo "bisect smoke: wrong or missing window verdict"; cat "$SMOKE/bisect.out"; exit 1; }
grep -q "first diverging op: 6400 (component cache)" "$SMOKE/bisect.out" \
    || { echo "bisect smoke: wrong or missing op verdict"; cat "$SMOKE/bisect.out"; exit 1; }
DUMP=$(sed -n 's/^flight recorder dumped to //p' "$SMOKE/bisect.out")
[ -n "$DUMP" ] && [ -s "$DUMP" ] \
    || { echo "bisect smoke: flight recorder dump missing or empty"; exit 1; }
grep -q '"kind": "digest_mismatch"' "$DUMP" \
    || { echo "bisect smoke: dump lacks the digest_mismatch event"; exit 1; }
STATS="cargo run -q --offline --release -p dylect-telemetry --bin dylect-stats --"
RC=0
$STATS bisect "$DIV/bisect-base.digest.jsonl" "$DIV/bisect-perturbed.digest.jsonl" \
    > "$SMOKE/bisect-stats.out" || RC=$?
[ "$RC" = 1 ] || { echo "bisect smoke: dylect-stats bisect exit $RC, want 1"; exit 1; }
grep -q 'component `cache`' "$SMOKE/bisect-stats.out" \
    || { echo "bisect smoke: dylect-stats bisect named the wrong component"; exit 1; }
$STATS bisect "$DIV/bisect-base.digest.jsonl" "$DIV/bisect-base.digest.jsonl" >/dev/null \
    || { echo "bisect smoke: identical streams must exit 0"; exit 1; }
echo "bisect smoke: OK"

echo "== scenario smoke: co-scheduled runs diff clean, tenant exports included"
# Two fig_tenants runs of the same full scenario (two tenants, nested 2D
# walks, a phase shift and a pressure squeeze inside the window) must be
# byte-identically reproducible: the printed tables AND the per-tenant
# .tenants.jsonl exports. DYLECT_NO_CACHE keeps the solo baselines
# honest — both runs simulate everything fresh.
for run in a b; do
    DYLECT_SCENARIO='tenants=omnetpp,canneal;nested=1;phase@1024=theta:0.2,hot:0.8;pressure@2048=128' \
        DYLECT_QUICK=1 DYLECT_JOBS=2 DYLECT_NO_CACHE=1 \
        cargo run -q --offline --release -p dylect-bench \
        --bin fig_tenants -- --out "$SMOKE/tenants-$run" > "$SMOKE/tenants-$run.tsv"
done
cmp -s "$SMOKE/tenants-a.tsv" "$SMOKE/tenants-b.tsv" \
    || { echo "scenario smoke: fig_tenants tables not reproducible"; exit 1; }
ls "$SMOKE"/tenants-a/*.tenants.jsonl >/dev/null 2>&1 \
    || { echo "scenario smoke: no .tenants.jsonl exports written"; exit 1; }
for f in "$SMOKE"/tenants-a/*.tenants.jsonl; do
    cmp -s "$f" "$SMOKE/tenants-b/$(basename "$f")" \
        || { echo "scenario smoke: $(basename "$f") not reproducible"; exit 1; }
    grep -q '"slowdown"' "$f" \
        || { echo "scenario smoke: $(basename "$f") has no slowdown rows"; exit 1; }
    grep -q '"finding"' "$f" \
        || { echo "scenario smoke: $(basename "$f") has no interference findings"; exit 1; }
done
echo "scenario smoke: OK"

echo "== bench-diff gate: committed BENCH trajectory within budgets"
# The committed bench-history registry, oldest snapshot first. Gates: the
# newest median step must not regress >25% over its predecessor, and any
# self-profiling or state-digest snapshot must show <2% armed overhead.
cargo run -q --offline --release -p dylect-telemetry --bin dylect-stats -- \
    bench-diff BENCH_latency_attrib.json BENCH_telemetry.json \
    BENCH_batched.json BENCH_checkpoint.json BENCH_selfprofile.json \
    BENCH_digest.json BENCH_scenario.json \
    --gate-rel 0.25 --max-overhead-pct 2.0 \
    || { echo "bench-diff gate: trajectory breached a budget"; exit 1; }
echo "bench-diff gate: OK"

echo "== serve smoke: dylect-serve answers healthz, figure, and diff"
# Serve the telemetry exports from the first smoke on an ephemeral port
# and exercise the HTTP surface with the built-in client: /healthz,
# /figure/<name> (byte-compared against the on-disk artifact), /diff of
# an artifact against its reproduced twin (must be identical => 200),
# and a missing artifact (must be a non-200 status).
SERVE_BIN=target/release/dylect-serve
WWW="$SMOKE/www"
mkdir -p "$WWW/cache"
cp "$SMOKE"/a/*.jsonl "$WWW/"
cp "$SMOKE"/tenants-a/*.tenants.jsonl "$WWW/"
cp "$DCACHE"/*.digest.jsonl "$WWW/cache/"
DYLECT_SERVE_ADDR=127.0.0.1:0 DYLECT_PROF=1 "$SERVE_BIN" "$WWW" \
    > "$SMOKE/serve.out" 2>/dev/null &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$SMOKE"' EXIT
for _ in $(seq 50); do
    grep -q "^listening on " "$SMOKE/serve.out" && break
    sleep 0.1
done
ADDR=$(sed -n 's/^listening on //p' "$SMOKE/serve.out")
[ -n "$ADDR" ] || { echo "serve smoke: server never came up"; exit 1; }
"$SERVE_BIN" get "http://$ADDR/healthz" > "$SMOKE/healthz.out" \
    || { echo "serve smoke: /healthz failed"; exit 1; }
# Skip the tenants exports here: the /diff twin below comes from the
# telemetry smoke's b-run, which has no tenants artifacts.
FIG=$(basename "$(ls "$WWW"/*.jsonl | grep -v '\.tenants\.jsonl$' | head -1)")
"$SERVE_BIN" get "http://$ADDR/figure/$FIG" > "$SMOKE/figure.out" \
    || { echo "serve smoke: /figure/$FIG failed"; exit 1; }
cmp -s "$SMOKE/figure.out" "$WWW/$FIG" \
    || { echo "serve smoke: /figure/$FIG differs from on-disk artifact"; exit 1; }
cp "$SMOKE/b/$FIG" "$WWW/twin-$FIG"
"$SERVE_BIN" get "http://$ADDR/diff?a=$FIG&b=twin-$FIG" > "$SMOKE/diff.out" \
    || { echo "serve smoke: /diff reported drift between identical runs"; exit 1; }
if "$SERVE_BIN" get "http://$ADDR/figure/no-such-artifact.jsonl" >/dev/null 2>&1; then
    echo "serve smoke: missing artifact did not 404"; exit 1
fi
# /metrics must be well-formed Prometheus text with the full phase-timer
# schema (every phase series present even at zero) and request counters —
# the serve_request timer is live because the server runs with
# DYLECT_PROF=1. /runs answers even with no progress markers.
"$SERVE_BIN" get "http://$ADDR/metrics" > "$SMOKE/metrics.out" \
    || { echo "serve smoke: /metrics failed"; exit 1; }
for series in dylect_serve_requests_total dylect_prof_phase_ns_total \
    dylect_prof_phase_calls_total dylect_runs_total; do
    grep -q "^$series" "$SMOKE/metrics.out" \
        || { echo "serve smoke: /metrics missing $series"; exit 1; }
done
grep -q 'dylect_prof_phase_ns_total{phase="serve_request"}' "$SMOKE/metrics.out" \
    || { echo "serve smoke: /metrics missing serve_request phase"; exit 1; }
"$SERVE_BIN" get "http://$ADDR/runs" >/dev/null \
    || { echo "serve smoke: /runs failed"; exit 1; }
# /digest/<cache-stem> must serve the runner's digest stream byte-for-byte
# (suffix optional), and /metrics must count its windows.
DSTREAM=$(ls "$WWW"/cache/*.digest.jsonl | head -1)
DSTEM=$(basename "$DSTREAM" .digest.jsonl)
"$SERVE_BIN" get "http://$ADDR/digest/$DSTEM" > "$SMOKE/digest.out" \
    || { echo "serve smoke: /digest/$DSTEM failed"; exit 1; }
cmp -s "$SMOKE/digest.out" "$DSTREAM" \
    || { echo "serve smoke: /digest/$DSTEM differs from on-disk stream"; exit 1; }
grep -q "dylect_digest_windows{artifact=\"$DSTEM.digest.jsonl\"}" "$SMOKE/metrics.out" \
    || { echo "serve smoke: /metrics missing dylect_digest_windows gauge"; exit 1; }
# The fig_tenants exports must surface as per-tenant slowdown gauges and
# be fetchable as ordinary artifacts.
TEN=$(basename "$(ls "$WWW"/*.tenants.jsonl | head -1)")
"$SERVE_BIN" get "http://$ADDR/figure/$TEN" > "$SMOKE/tenfig.out" \
    || { echo "serve smoke: /figure/$TEN failed"; exit 1; }
cmp -s "$SMOKE/tenfig.out" "$WWW/$TEN" \
    || { echo "serve smoke: /figure/$TEN differs from on-disk artifact"; exit 1; }
grep -q "dylect_tenant_slowdown{artifact=\"$TEN\"" "$SMOKE/metrics.out" \
    || { echo "serve smoke: /metrics missing dylect_tenant_slowdown gauge"; exit 1; }
kill "$SERVE_PID" 2>/dev/null || true
echo "serve smoke: OK"

echo "verify: OK"
