#!/usr/bin/env bash
# Snapshots the end-to-end simulator-step microbenchmark into a
# BENCH_*.json file (first argument; default BENCH_telemetry.json), so
# telemetry-related changes can be checked against the <=2% step-rate
# regression budget. Runs fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_telemetry.json}"

echo "== cargo bench --offline --bench micro (end_to_end)" >&2
RAW=$(cargo bench --offline --bench micro 2>&1 | tee /dev/stderr | grep "system_step_1000_ops")

# Bench line format:
#   name  <median> ns/iter (min <min>, max <max>, <n> samples x <iters> iters)
MEDIAN=$(echo "$RAW" | sed -n 's/.*ops[[:space:]]*\([0-9.]*\) ns\/iter.*/\1/p')
MIN=$(echo "$RAW" | sed -n 's/.*(min \([0-9.]*\).*/\1/p')
MAX=$(echo "$RAW" | sed -n 's/.*max \([0-9.]*\).*/\1/p')

if [ -z "$MEDIAN" ]; then
    echo "bench_snapshot: could not parse bench output:" >&2
    echo "$RAW" >&2
    exit 1
fi

GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

cat > "$OUT" <<JSON
{
  "bench": "system_step_1000_ops",
  "median_ns_per_iter": $MEDIAN,
  "min_ns_per_iter": $MIN,
  "max_ns_per_iter": $MAX,
  "git_rev": "$GIT_REV"
}
JSON

echo "bench_snapshot: wrote $OUT (median $MEDIAN ns/iter)"
