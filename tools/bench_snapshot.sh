#!/usr/bin/env bash
# Snapshots the end-to-end simulator-step microbenchmarks into
# BENCH_*.json files, so observability changes can be checked against the
# <=2% step-rate regression budget. Runs fully offline.
#
#   $1  probes-off snapshot   (default BENCH_telemetry.json)
#   $2  shadow-probe snapshot (default BENCH_shadow.json)
#   $3  batched-loop snapshot (default BENCH_batched.json)
#   $4  checkpoint snapshot   (default BENCH_checkpoint.json)
#   $5  self-profile snapshot (default BENCH_selfprofile.json)
#   $6  state-digest snapshot (default BENCH_digest.json)
#   $7  scenario snapshot     (default BENCH_scenario.json)
#
# Every named snapshot is written or the script fails loudly — a missing
# bench line is a harness regression, not a skippable condition.
#
# The first file records `system_step_1000_ops` (telemetry fully off — the
# budget-carrying number). The second records it next to
# `system_step_1000_shadow` (shadow CTE caches + provenance attached) and
# the measured overhead percentage, which is reported, not budgeted.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_telemetry.json}"
SHADOW_OUT="${2:-BENCH_shadow.json}"
BATCHED_OUT="${3:-BENCH_batched.json}"
CHECKPOINT_OUT="${4:-BENCH_checkpoint.json}"
PROF_OUT="${5:-BENCH_selfprofile.json}"
DIGEST_OUT="${6:-BENCH_digest.json}"
SCENARIO_OUT="${7:-BENCH_scenario.json}"

# The pre-batching baseline comes from the *committed* shadow snapshot
# (falling back to the working-tree copy): this run refreshes the file,
# so reading it afterwards — or after an earlier local run — would
# compare the new number to itself. The committed copy is read by its
# canonical name even when $2 redirects this run's output elsewhere.
FROZEN=$( (git show HEAD:BENCH_shadow.json 2>/dev/null \
        || cat "$SHADOW_OUT" 2>/dev/null || true) \
    | sed -n 's/.*"baseline_median_ns_per_iter": \([0-9.]*\).*/\1/p' | head -1)

echo "== cargo bench --offline --bench micro (end_to_end)" >&2
RAW=$(cargo bench --offline --bench micro 2>&1 | tee /dev/stderr \
    | grep -E "system_(step|restore)_1000|^prof_(phase|overhead_pct) |^digest_overhead_pct ")
BASE=$(echo "$RAW" | grep "system_step_1000_ops")
SHADOW=$(echo "$RAW" | grep "system_step_1000_shadow" || true)

# Bench line format:
#   name  <median> ns/iter (min <min>, max <max>, <n> samples x <iters> iters)
parse() { echo "$1" | sed -n "s/.*$2[[:space:]]*\([0-9.]*\) ns\/iter.*/\1/p"; }
MEDIAN=$(parse "$BASE" ops)
MIN=$(echo "$BASE" | sed -n 's/.*(min \([0-9.]*\).*/\1/p')
MAX=$(echo "$BASE" | sed -n 's/.*max \([0-9.]*\).*/\1/p')

if [ -z "$MEDIAN" ]; then
    echo "bench_snapshot: could not parse bench output:" >&2
    echo "$RAW" >&2
    exit 1
fi

GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

cat > "$OUT" <<JSON
{
  "bench": "system_step_1000_ops",
  "median_ns_per_iter": $MEDIAN,
  "min_ns_per_iter": $MIN,
  "max_ns_per_iter": $MAX,
  "git_rev": "$GIT_REV"
}
JSON
echo "bench_snapshot: wrote $OUT (median $MEDIAN ns/iter)"

SHADOW_MEDIAN=$(parse "$SHADOW" shadow)
if [ -z "$SHADOW_MEDIAN" ]; then
    echo "bench_snapshot: no system_step_1000_shadow line; cannot write $SHADOW_OUT" >&2
    exit 1
fi
OVERHEAD=$(awk -v b="$MEDIAN" -v s="$SHADOW_MEDIAN" \
    'BEGIN { printf "%.2f", (s - b) / b * 100 }')

cat > "$SHADOW_OUT" <<JSON
{
  "bench": "system_step_1000_shadow",
  "baseline_median_ns_per_iter": $MEDIAN,
  "shadow_median_ns_per_iter": $SHADOW_MEDIAN,
  "shadow_overhead_pct": $OVERHEAD,
  "git_rev": "$GIT_REV"
}
JSON
echo "bench_snapshot: wrote $SHADOW_OUT (shadow median $SHADOW_MEDIAN ns/iter, overhead ${OVERHEAD}%)"

# Batched-retirement snapshot: the probes-off number again, plus its
# speedup over the frozen pre-batching baseline recorded in the committed
# BENCH_shadow.json (the `baseline_median_ns_per_iter` field from the
# last per-op-loop snapshot). The ratio carries the optimisation claim;
# the sharded two-MC variants ride along for reference.
if [ -n "$FROZEN" ]; then
    SPEEDUP=$(awk -v f="$FROZEN" -v m="$MEDIAN" 'BEGIN { printf "%.2f", f / m }')
    MC_SEQ=$(parse "$(echo "$RAW" | grep 2mc_seq || true)" 2mc_seq)
    MC_PAR=$(parse "$(echo "$RAW" | grep 2mc_jobs2 || true)" 2mc_jobs2)
    cat > "$BATCHED_OUT" <<JSON
{
  "bench": "system_step_1000_ops",
  "median_ns_per_iter": $MEDIAN,
  "min_ns_per_iter": $MIN,
  "frozen_baseline_ns_per_iter": $FROZEN,
  "speedup_vs_frozen_baseline": $SPEEDUP,
  "two_mc_sequential_ns_per_iter": ${MC_SEQ:-null},
  "two_mc_two_jobs_ns_per_iter": ${MC_PAR:-null},
  "git_rev": "$GIT_REV"
}
JSON
    echo "bench_snapshot: wrote $BATCHED_OUT (${SPEEDUP}x vs frozen baseline $FROZEN ns/iter)"
else
    echo "bench_snapshot: no frozen baseline in $SHADOW_OUT; cannot write $BATCHED_OUT" >&2
    exit 1
fi

# Checkpoint-restore snapshot: `system_restore_1000_ops` rewinds to a
# warmed snapshot before every 1000-op step, so its delta against the
# plain step number is the per-resume restore cost. Reported, not
# budgeted — restores happen once per warm-started sweep bin, not per
# step.
RESTORE=$(echo "$RAW" | grep "system_restore_1000_ops" || true)
RESTORE_MEDIAN=$(parse "$RESTORE" restore_1000_ops)
if [ -z "$RESTORE_MEDIAN" ]; then
    echo "bench_snapshot: no system_restore_1000_ops line; cannot write $CHECKPOINT_OUT" >&2
    exit 1
fi
RESTORE_OVERHEAD=$(awk -v b="$MEDIAN" -v r="$RESTORE_MEDIAN" \
    'BEGIN { printf "%.1f", r - b }')

cat > "$CHECKPOINT_OUT" <<JSON
{
  "bench": "system_restore_1000_ops",
  "restore_median_ns_per_iter": $RESTORE_MEDIAN,
  "step_median_ns_per_iter": $MEDIAN,
  "restore_overhead_ns_per_resume": $RESTORE_OVERHEAD,
  "git_rev": "$GIT_REV"
}
JSON
echo "bench_snapshot: wrote $CHECKPOINT_OUT (restore median $RESTORE_MEDIAN ns/iter, +${RESTORE_OVERHEAD} ns over plain step)"

# Self-profile snapshot: `system_step_1000_prof` is the plain batched step
# loop with the host profiler armed, measured against an interleaved
# prof-off baseline from the same bench (drift-cancelling pairs; the
# bench prints the paired overhead as a `prof_overhead_pct` line). The
# overhead is budgeted at <2% by the `dylect-stats bench-diff
# --max-overhead-pct` gate in tools/verify.sh, and the accumulated
# `prof_phase` lines become phase_* fields — the wall-clock breakdown
# answering where the remaining ns/op go.
PROF=$(echo "$RAW" | grep "system_step_1000_prof " || true)
PROF_MEDIAN=$(parse "$PROF" prof)
PROF_BASE=$(parse "$(echo "$RAW" | grep "system_step_1000_prof_base" || true)" base)
PROF_OVERHEAD=$(echo "$RAW" | sed -n 's/^prof_overhead_pct \(-\{0,1\}[0-9.]*\)$/\1/p' | head -1)
if [ -z "$PROF_MEDIAN" ] || [ -z "$PROF_BASE" ] || [ -z "$PROF_OVERHEAD" ]; then
    echo "bench_snapshot: no system_step_1000_prof lines; cannot write $PROF_OUT" >&2
    exit 1
fi
PHASES=$(echo "$RAW" | awk '/^prof_phase / {
    printf "  \"phase_%s_ns\": %s,\n  \"phase_%s_calls\": %s,\n", $2, $3, $2, $4
}')

cat > "$PROF_OUT" <<JSON
{
  "bench": "system_step_1000_prof",
  "median_ns_per_iter": $PROF_MEDIAN,
  "baseline_median_ns_per_iter": $PROF_BASE,
  "prof_overhead_pct": $PROF_OVERHEAD,
$PHASES
  "git_rev": "$GIT_REV"
}
JSON
echo "bench_snapshot: wrote $PROF_OUT (prof median $PROF_MEDIAN ns/iter, overhead ${PROF_OVERHEAD}%)"

# State-digest snapshot: `system_step_1000_digest` is the batched step
# loop with the digest window clock armed at the default window length,
# against an interleaved digest-off baseline (each on-side sample spans
# more than one window, so the median includes the amortized full-state
# capture cost). Budgeted at <2% by the same bench-diff gate as the
# profiler.
DIGEST=$(parse "$(echo "$RAW" | grep "system_step_1000_digest " || true)" digest)
DIGEST_BASE=$(parse "$(echo "$RAW" | grep "system_step_1000_digest_base" || true)" base)
DIGEST_OVERHEAD=$(echo "$RAW" | sed -n 's/^digest_overhead_pct \(-\{0,1\}[0-9.]*\)$/\1/p' | head -1)
if [ -z "$DIGEST" ] || [ -z "$DIGEST_BASE" ] || [ -z "$DIGEST_OVERHEAD" ]; then
    echo "bench_snapshot: no system_step_1000_digest lines; cannot write $DIGEST_OUT" >&2
    exit 1
fi

cat > "$DIGEST_OUT" <<JSON
{
  "bench": "system_step_1000_digest",
  "median_ns_per_iter": $DIGEST,
  "baseline_median_ns_per_iter": $DIGEST_BASE,
  "digest_overhead_pct": $DIGEST_OVERHEAD,
  "git_rev": "$GIT_REV"
}
JSON
echo "bench_snapshot: wrote $DIGEST_OUT (digest median $DIGEST ns/iter, overhead ${DIGEST_OVERHEAD}%)"

# Scenario snapshot: `system_step_1000_tenants` is the two-tenant
# co-scheduled step loop (one ASID-tagged core per tenant on a shared
# memory side). The gated median stays the plain single-tenant step
# (`baseline_median_ns_per_iter` — bench-diff's fallback key), so the
# trajectory gate keeps tracking the budget-carrying number; the
# two-tenant median and its ratio over the plain step ride along for
# reference, like the shadow overhead.
TENANTS=$(parse "$(echo "$RAW" | grep "system_step_1000_tenants" || true)" tenants)
if [ -z "$TENANTS" ]; then
    echo "bench_snapshot: no system_step_1000_tenants line; cannot write $SCENARIO_OUT" >&2
    exit 1
fi
TENANTS_RATIO=$(awk -v b="$MEDIAN" -v t="$TENANTS" 'BEGIN { printf "%.2f", t / b }')

cat > "$SCENARIO_OUT" <<JSON
{
  "bench": "system_step_1000_tenants",
  "baseline_median_ns_per_iter": $MEDIAN,
  "tenants_median_ns_per_iter": $TENANTS,
  "tenants_per_step_ratio": $TENANTS_RATIO,
  "git_rev": "$GIT_REV"
}
JSON
echo "bench_snapshot: wrote $SCENARIO_OUT (tenants median $TENANTS ns/iter, ${TENANTS_RATIO}x plain step)"
