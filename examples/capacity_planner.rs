//! Capacity planning: how much DRAM can hardware compression save at an
//! acceptable slowdown?
//!
//! Sweeps DRAM sizes between the high-compression point and the full
//! uncompressed footprint for one benchmark under DyLeCT, printing the
//! performance/capacity trade-off curve a deployment would use to choose
//! an operating point.
//!
//! ```text
//! cargo run --release -p dylect-bench --example capacity_planner [bench]
//! ```

use dylect_sim::{SchemeKind, System, SystemConfig};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "omnetpp".to_owned());
    let spec = BenchmarkSpec::by_name(&name).expect("benchmark in suite");
    let setting = CompressionSetting::High;

    // The no-compression reference point. Scale 16 keeps the footprint
    // well above the 8 MiB DRAM floor so the sweep is meaningful.
    let scale = 16;
    let mut base_cfg = SystemConfig::quick(&spec, SchemeKind::NoCompression, setting);
    base_cfg.scale = scale;
    base_cfg.dram_bytes = spec.dram_bytes_no_compression(scale);
    let footprint_mb = (spec.footprint_pages(scale) * 4096) >> 20;
    let base = System::new(base_cfg.clone(), &spec).run(500_000, 200_000);

    println!(
        "capacity planning for {} ({} MiB footprint)\n",
        spec.name, footprint_mb
    );
    println!(
        "{:>10} {:>12} {:>10} {:>9} {:>10}",
        "dram_mib", "saved_vs_fp", "perf_rel", "CTE hit", "ML2 pages"
    );

    let lo = spec.dram_bytes(CompressionSetting::High, scale);
    let hi = spec.dram_bytes(CompressionSetting::Low, scale);
    let steps = 5u64;
    for i in 0..=steps {
        let dram = lo + (hi - lo) * i / steps;
        let dram = dram.div_ceil(1 << 20) << 20;
        let mut cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), setting);
        cfg.scale = scale;
        cfg.dram_bytes = dram;
        let mut sys = System::new(cfg, &spec);
        let r = sys.run(500_000, 200_000);
        println!(
            "{:>10} {:>11.1}% {:>10.3} {:>9.3} {:>10}",
            dram >> 20,
            100.0 * (1.0 - (dram >> 20) as f64 / footprint_mb as f64),
            r.speedup_over(&base),
            r.mc.cte_hit_rate(),
            r.occupancy.ml2_pages,
        );
    }
    println!("\nPick the smallest DRAM whose relative performance you can accept;");
    println!("DyLeCT's short CTEs keep the translation cost flat across the sweep.");
}
