//! Graph analytics under memory compression: run a GraphBig-like kernel
//! against all four memory-controller schemes and compare.
//!
//! ```text
//! cargo run --release -p dylect-bench --example graph_analytics [bench]
//! ```

use dylect_sim::{SchemeKind, System, SystemConfig};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bfs".to_owned());
    let spec = BenchmarkSpec::by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}; try bfs, sssp, pagerank, ..."));
    let setting = CompressionSetting::High;

    println!(
        "{} ({}): {} footprint, DRAM {} MiB compressed vs {} MiB uncompressed\n",
        spec.name,
        spec.suite,
        human(spec.footprint_pages(512) * 4096),
        spec.dram_bytes(setting, 512) >> 20,
        spec.dram_bytes_no_compression(512) >> 20,
    );

    println!(
        "{:<18} {:>12} {:>9} {:>10} {:>12}",
        "scheme", "instr/sec", "CTE hit", "L3 adder", "blocks/kinst"
    );
    let mut baseline = None;
    for scheme in [
        SchemeKind::NoCompression,
        SchemeKind::tmcc(),
        SchemeKind::NaiveDynamic,
        SchemeKind::dylect(),
    ] {
        let cfg = SystemConfig::quick(&spec, scheme.clone(), setting);
        let mut sys = System::new(cfg, &spec);
        let r = sys.run(600_000, 200_000);
        let rel = baseline.get_or_insert(r.ips()).to_owned();
        println!(
            "{:<18} {:>12.3e} {:>9.3} {:>8.1}ns {:>12.1}   ({:.2}x of no-compression)",
            r.scheme,
            r.ips(),
            r.mc.cte_hit_rate(),
            r.l3_miss_overhead_ns,
            r.traffic_per_kilo_instruction(),
            r.ips() / rel,
        );
    }
    println!("\nDyLeCT keeps the compressed capacity of TMCC while translating");
    println!("most requests through 2-bit short CTEs in pre-gathered blocks.");
}

fn human(bytes: u64) -> String {
    if bytes >= 1 << 30 {
        format!("{:.1} GiB", bytes as f64 / (1u64 << 30) as f64)
    } else {
        format!("{} MiB", bytes >> 20)
    }
}
