//! Driving the DyLeCT memory controller directly with a custom workload.
//!
//! The full-system simulator wraps the MC in cores and caches; this example
//! shows the core library API instead: build a `Dylect` controller over a
//! DRAM model, feed it your own physical-address stream, and inspect the
//! translation behavior.
//!
//! ```text
//! cargo run --release -p dylect-bench --example custom_workload
//! ```

use dylect_compression::CompressibilityProfile;
use dylect_core::{Dylect, DylectConfig};
use dylect_dram::{Dram, DramConfig};
use dylect_memctl::MemoryScheme;
use dylect_sim_core::rng::{Rng, Zipf};
use dylect_sim_core::{PhysAddr, Time, PAGE_BYTES};

fn main() {
    // 600 MiB of OS-visible memory in 384 MiB of DRAM: compression needed.
    let os_pages = 150_000;
    let dram = Dram::new(DramConfig::paper(384 << 20, 8));
    let profile = CompressibilityProfile::with_mean_ratio("custom", 3.0);
    let mut mc = Dylect::new(DylectConfig::paper(os_pages), &dram, profile, 42);
    let mut dram = dram;

    // A hand-rolled workload: 90% of accesses Zipf-distributed over a hot
    // million bytes per "tenant", 10% uniform cold.
    let mut rng = Rng::new(7);
    let zipf = Zipf::new(4_000, 1.1);
    let mut t = Time::ZERO;
    for i in 0..800_000u64 {
        let page = if rng.chance(0.9) {
            zipf.sample(&mut rng) * 7 % os_pages
        } else {
            rng.next_below(os_pages)
        };
        let addr = PhysAddr::new(page * PAGE_BYTES + rng.next_below(64) * 64);
        let resp = mc.access(t, addr, i % 5 == 0, &mut dram);
        t = resp.data_ready;
    }

    let st = mc.stats();
    println!("requests            : {}", st.requests.get());
    println!("CTE hit rate        : {:.3}", st.cte_hit_rate());
    println!("  pre-gathered      : {:.3}", st.pregathered_hit_rate());
    println!("  unified           : {:.3}", st.unified_hit_rate());
    println!("expansions          : {}", st.expansions.get());
    println!("promotions to ML0   : {}", st.promotions.get());
    println!("demotions from ML0  : {}", st.demotions.get());
    println!(
        "mean translation    : {:.1} ns",
        st.translation_latency.mean()
    );
    let occ = mc.occupancy();
    println!(
        "memory levels       : ML0={} ML1={} ML2={} (ML0 share of uncompressed {:.2})",
        occ.ml0_pages,
        occ.ml1_pages,
        occ.ml2_pages,
        occ.ml0_fraction_of_uncompressed()
    );
    // The controller's internal invariants should hold after any stream.
    mc.check_invariants();
    println!("invariants          : OK");
}
