//! Quickstart: simulate one benchmark under DyLeCT and print the headline
//! statistics.
//!
//! ```text
//! cargo run --release -p dylect-bench --example quickstart
//! ```

use dylect_sim::{SchemeKind, System, SystemConfig};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

fn main() {
    // Pick a benchmark from the paper's suite (Table 2).
    let spec = BenchmarkSpec::by_name("canneal").expect("canneal is in the suite");

    // Build the paper's system (Table 3) at a small scale for a fast demo:
    // DDR4-3200 with DyLeCT in the memory controller, DRAM sized for the
    // high-compression setting.
    let mut cfg = SystemConfig::quick(&spec, SchemeKind::dylect(), CompressionSetting::High);
    cfg.cores = 2;
    let mut sys = System::new(cfg, &spec);

    // Warm up the caches, TLBs, and DyLeCT's memory levels, then measure.
    let report = sys.run(400_000, 200_000);

    println!("benchmark            : {}", report.benchmark);
    println!("scheme               : {}", report.scheme);
    println!("instructions         : {}", report.instructions);
    println!("simulated time       : {}", report.elapsed);
    println!("perf (instr/sec)     : {:.3e}", report.ips());
    println!("TLB miss rate        : {:.4}", report.tlb_miss_rate);
    println!("CTE cache hit rate   : {:.3}", report.mc.cte_hit_rate());
    println!(
        "  via pre-gathered   : {:.3}",
        report.mc.pregathered_hit_rate()
    );
    println!("  via unified        : {:.3}", report.mc.unified_hit_rate());
    println!(
        "memory levels        : ML0={} ML1={} ML2={}",
        report.occupancy.ml0_pages, report.occupancy.ml1_pages, report.occupancy.ml2_pages
    );
    println!(
        "L3-miss latency adder: {:.1} ns",
        report.l3_miss_overhead_ns
    );
    println!(
        "DRAM traffic         : {:.1} blocks/kilo-instruction",
        report.traffic_per_kilo_instruction()
    );
    println!(
        "DRAM energy          : {:.2} nJ/instruction",
        report.energy_per_instruction_nj()
    );
}
