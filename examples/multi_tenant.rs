//! Multi-tenant scenario walkthrough: co-schedule two benchmarks on one
//! compressed-memory machine, shake it with phase churn and a memory-
//! pressure squeeze, and read the per-tenant fairness numbers.
//!
//! ```text
//! cargo run --release -p dylect-bench --example multi_tenant
//! ```
//!
//! The same spec string works end to end from the environment: set
//! `DYLECT_SCENARIO='tenants=omnetpp,canneal;...'` and the `fig_tenants`
//! binary runs it through the cached experiment runner.

use dylect_scenario::ScenarioSpec;
use dylect_sim::{SchemeKind, System, SystemConfig};
use dylect_workloads::{BenchmarkSpec, CompressionSetting};

fn main() {
    // A scenario is one compact string: the tenant mix, optional 2D
    // nested page walks, and events at retired-op boundaries inside the
    // measurement window. Here: a Zipf-skew + hot-set phase shift for
    // every tenant at op 64k, then a ballooning squeeze (every memory
    // controller reclaims 2048 extra pages) at op 128k.
    let scenario = ScenarioSpec::parse(
        "tenants=omnetpp,canneal;phase@65536=theta:0.99,hot:0.2;pressure@131072=2048",
    )
    .expect("spec is valid");

    // Start from the single-process quick config and let the scenario
    // resize it: one core per tenant, DRAM for the combined footprint.
    let setting = CompressionSetting::High;
    let first = BenchmarkSpec::by_name(&scenario.tenants[0]).expect("in suite");
    let base = SystemConfig::quick(&first, SchemeKind::dylect(), setting);
    let cfg = scenario.configure(base, setting);

    // Solo baselines: each tenant alone on an identically-scaled machine.
    let solo_ips: Vec<f64> = scenario
        .resolve()
        .iter()
        .map(|t| {
            let mut solo = SystemConfig::quick(t, SchemeKind::dylect(), setting);
            solo.scale = cfg.scale;
            System::new(solo, t).run(400_000, 200_000).ips()
        })
        .collect();

    // Fairness first, on the event-free co-schedule: slowdown compares
    // against the solo baselines, so both sides must run the same
    // workload behavior — events would change it mid-window.
    let steady = ScenarioSpec {
        events: Vec::new(),
        ..scenario.clone()
    };
    let outcome = steady.run(&mut steady.build_system(cfg.clone()), 400_000, 200_000);
    println!("machine              : {}", outcome.report.benchmark);
    println!("scheme               : {}", outcome.report.scheme);
    println!("aggregate instr/sec  : {:.3e}", outcome.report.ips());
    println!();
    println!("tenant      solo_ips    co_ips      slowdown");
    for (t, s) in outcome.tenants.iter().zip(outcome.slowdowns(&solo_ips)) {
        println!(
            "{:<10}  {:.3e}  {:.3e}  {s:.3}",
            t.tenant,
            solo_ips[t.asid as usize],
            t.ips(),
        );
    }

    // Now the full scenario: the same machine shaken by phase churn and
    // a ballooning squeeze. Events fire at their declared op boundaries;
    // compaction bursts show up in the scheme statistics.
    let churned = scenario.run(&mut scenario.build_system(cfg), 400_000, 200_000);
    println!();
    println!(
        "with events          : {:.3e} instr/sec",
        churned.report.ips()
    );
    println!(
        "free DRAM pages      : {} (steady) -> {} (squeezed)",
        outcome.report.occupancy.free_pages, churned.report.occupancy.free_pages,
    );
    println!("event boundaries (ping-pong pages need shadow telemetry):");
    for seg in &churned.segments {
        println!("  @{:<7} {}", seg.at_op, seg.label);
    }
}
